//! `loadgen` — drive a running `lemp serve` instance over real sockets and
//! report throughput plus p50/p95/p99 latency.
//!
//! Usage:
//! `loadgen addr=127.0.0.1:PORT [threads=4] [requests=200] [k=10] [qpr=2]
//!  [seed=42] [theta=<f>] [floor=<f>] [verify-probes=<path>]
//!  [insert-probes=<n>] [follower=<addr>] [report=<path>]`
//!
//! * `threads` client threads split `requests` total requests, each
//!   carrying `qpr` query vectors (dimensionality is discovered from
//!   `GET /healthz`).
//! * By default requests are `POST /top-k` at the given `k`; passing
//!   `floor=` adds a score floor to every top-k request (the server
//!   builds `QueryKind::TopKWithFloor` instead of plain `TopK`); passing
//!   `theta=` switches to `POST /above-theta`.
//! * With `verify-probes=` pointing at the matrix the server was booted
//!   on, every answer — Row-Top-k lists (plain or floored), or Above-θ
//!   entry sets when `theta=` is given — is checked against the naive
//!   baseline: the acceptance gate for the serving layer (sharded or
//!   not), any mismatch exits non-zero.
//! * `insert-probes=<n>` pushes `n` random probe vectors through
//!   `POST /probes` (batches of 16) *before* the query phase — probe
//!   churn for the durability crash drills. Works against every backend,
//!   sharded ones included: the per-insert `shards` array in the reply is
//!   accumulated into a routed-edit distribution. Per-batch edit latency
//!   percentiles are reported (`edit_latency_ms` in the JSON report) —
//!   against a `sync-replicas=` leader they measure the quorum wait, not
//!   just the local fsync. A `503` with `code: "quorum_timeout"` is
//!   counted, not fatal: the server applied and fsynced the edit, only
//!   the follower quorum lagged. Incompatible with `verify-probes=` (the
//!   inserted vectors are not in the matrix file).
//! * `follower=<addr>` is the replication consistency gate: after the
//!   query phase, wait (bounded) for the follower's `replication.lag_lsn`
//!   to reach 0, then replay every acknowledged request against the
//!   follower and demand answers identical to the leader's. Any
//!   divergence — or a follower that never catches up — exits non-zero.
//! * `report=<path>` additionally writes the results as a machine-readable
//!   JSON document (throughput, latency percentiles, verify counts,
//!   `shard_inserts` — inserts absorbed per shard — plus `replication`
//!   role/lag and `engine_memory` — the server's full-precision vs
//!   quantized probe residency per shard — sampled at the end of the run)
//!   so CI can archive perf trajectories as `BENCH_*.json` artifacts.
//! * The server's `GET /metrics` is scraped before and after the query
//!   phase; the delta of the engine-telemetry counters is embedded in the
//!   report under `"metrics"`, and on a clean run (no sheds, no errors)
//!   the server-side `lemp_http_request_duration_seconds_count` delta for
//!   the query path must equal the number of requests this client sent —
//!   any disagreement exits non-zero (a lost or double-counted request is
//!   an observability bug worth failing CI over).
//! * Latency percentiles come from the same fixed-bucket
//!   [`lemp_serve::metrics::Histogram`] the server exports — constant
//!   memory however long the run, at bucket-resolution accuracy.
//! * `503` responses (load shedding) are counted, not retried.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lemp_baselines::types::topk_equivalent;
use lemp_baselines::Naive;
use lemp_bench::report::Args;
use lemp_data::synthetic::GeneratorConfig;
use lemp_data::{io as mio, mm};
use lemp_linalg::{ScoredItem, VectorStore};
use lemp_serve::client;
use lemp_serve::json::{obj, Json};
use lemp_serve::metrics::Histogram;

fn load_matrix(path: &str) -> Result<VectorStore, String> {
    let p = std::path::Path::new(path);
    let result = match p.extension().and_then(|e| e.to_str()) {
        Some("bin") => mio::read_binary(p),
        Some("mtx") => mm::read_mm(p),
        _ => mio::read_csv(p),
    };
    result.map_err(|e| format!("cannot read {path}: {e}"))
}

fn queries_json(store: &VectorStore, lo: usize, hi: usize) -> Json {
    Json::Arr(
        (lo..hi)
            .map(|i| Json::Arr(store.vector(i).iter().map(|&x| Json::Num(x)).collect()))
            .collect(),
    )
}

/// The `p`-th percentile (0–100) of a latency histogram, in milliseconds.
/// Same fixed buckets as the server's exported histograms, so a run of any
/// length costs constant memory.
fn percentile(h: &Histogram, p: f64) -> f64 {
    h.quantile(p / 100.0) * 1e3
}

/// Scrapes `GET /metrics` into a flat `"name{labels}" -> value` map;
/// `None` when the server is unreachable or answers non-200.
fn scrape_metrics(addr: &str) -> Option<HashMap<String, f64>> {
    let timeout = Some(std::time::Duration::from_secs(10));
    let (status, body) = client::request_bytes(addr, "GET", "/metrics", timeout).ok()?;
    if status != 200 {
        return None;
    }
    let text = String::from_utf8(body).ok()?;
    let mut samples = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some((key, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                samples.insert(key.to_string(), v);
            }
        }
    }
    Some(samples)
}

/// One Above-θ result entry: (local query row, probe id, value).
type AboveEntry = (u32, u32, f64);

/// Outcome of one request: latency (ok) or the failure class.
enum Outcome {
    Ok { ns: u64, lists: Vec<Vec<ScoredItem>>, entries: Vec<AboveEntry> },
    Shed,
    Error(String),
}

fn main() {
    let args = Args::parse();
    let addr = args.get_str("addr", "");
    if addr.is_empty() {
        eprintln!("usage: loadgen addr=HOST:PORT [threads=4] [requests=200] [k=10] [qpr=2] [seed=42] [theta=<f>] [floor=<f>] [verify-probes=<path>]");
        std::process::exit(2);
    }
    let threads = args.get_u64("threads", 4).max(1) as usize;
    let requests = args.get_u64("requests", 200).max(1) as usize;
    let k = args.get_u64("k", 10) as usize;
    let qpr = args.get_u64("qpr", 2).max(1) as usize;
    let seed = args.get_u64("seed", 42);
    let theta = args.get_f64("theta", f64::NAN);
    let above_mode = theta.is_finite();
    let floor = args.get_f64("floor", f64::NAN);
    let floored = floor.is_finite();
    if above_mode && floored {
        eprintln!("loadgen: floor= applies to top-k mode; drop theta= to use it");
        std::process::exit(2);
    }
    let insert_probes = args.get_u64("insert-probes", 0) as usize;
    let follower = args.get_str("follower", "");
    let report_path = args.get_str("report", "");
    if insert_probes > 0 && !args.get_str("verify-probes", "").is_empty() {
        eprintln!(
            "loadgen: insert-probes= mutates the live probe set, which verify-probes= \
             cannot model; run them in separate invocations"
        );
        std::process::exit(2);
    }

    // Discover the engine shape from the server itself.
    let (status, health) = match client::get(&addr, "/healthz") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };
    if status != 200 {
        eprintln!("loadgen: /healthz returned {status}: {health:?}");
        std::process::exit(1);
    }
    let dim = health.get("dim").and_then(Json::as_u64).unwrap_or(0) as usize;
    let probes_live = health.get("probes").and_then(Json::as_u64).unwrap_or(0);
    if dim == 0 {
        eprintln!("loadgen: server reports dimensionality 0");
        std::process::exit(1);
    }
    eprintln!("loadgen: target {addr} | {probes_live} probes, r = {dim}");

    // Probe churn ahead of the query phase: exercises the POST /probes
    // write path (and, on a durable server, the WAL) under a live engine.
    let mut inserted_probes = 0usize;
    // Routed-edit distribution: how many of our inserts each shard
    // absorbed, from the `shards` array the server reports per insert
    // (single-engine servers report shard 0 for everything).
    let mut shard_inserts: Vec<u64> = Vec::new();
    // Per-batch POST /probes latency — against a semi-synchronous leader
    // this includes the quorum wait, so it is the client-visible edit cost.
    let edit_latencies = Histogram::request_latency();
    let mut quorum_timeouts = 0usize;
    if insert_probes > 0 {
        let churn = GeneratorConfig::gaussian(insert_probes, dim, 1.0).generate(seed ^ 0x9E37_79B9);
        let mut lo = 0;
        while lo < churn.len() {
            let hi = (lo + 16).min(churn.len());
            let body = obj(vec![("insert", queries_json(&churn, lo, hi))]);
            let start = Instant::now();
            match client::post(&addr, "/probes", &body) {
                Ok((200, reply)) => {
                    edit_latencies.observe(start.elapsed().as_secs_f64());
                    inserted_probes +=
                        reply.get("inserted").and_then(Json::as_arr).map_or(0, |a| a.len());
                    if let Some(shards) = reply.get("shards").and_then(Json::as_arr) {
                        for shard in shards {
                            let shard = shard.as_u64().unwrap_or(0) as usize;
                            if shard >= shard_inserts.len() {
                                shard_inserts.resize(shard + 1, 0);
                            }
                            shard_inserts[shard] += 1;
                        }
                    }
                }
                Ok((503, reply))
                    if reply.get("code").and_then(Json::as_str) == Some("quorum_timeout") =>
                {
                    // The leader applied and fsynced the batch; only the
                    // follower quorum lagged. Count the whole batch as
                    // inserted (the 503 body carries no per-insert ids) and
                    // keep going — delayed replication is not lost data.
                    edit_latencies.observe(start.elapsed().as_secs_f64());
                    quorum_timeouts += 1;
                    inserted_probes += hi - lo;
                }
                Ok((status, reply)) => {
                    eprintln!("loadgen: POST /probes returned {status}: {reply:?}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("loadgen: POST /probes failed: {e}");
                    std::process::exit(1);
                }
            }
            lo = hi;
        }
        if inserted_probes != insert_probes {
            eprintln!("loadgen: asked for {insert_probes} inserts, server took {inserted_probes}");
            std::process::exit(1);
        }
        let spread: Vec<String> = shard_inserts.iter().map(u64::to_string).collect();
        eprintln!(
            "loadgen: inserted {inserted_probes} probes before the query phase \
             (per shard: [{}]) | edit latency p50 {:.3} ms, p99 {:.3} ms | \
             {quorum_timeouts} quorum timeouts",
            spread.join(", "),
            percentile(&edit_latencies, 50.0),
            percentile(&edit_latencies, 99.0),
        );
    }

    // Scrape the server's cumulative metrics on either side of the query
    // phase: the delta isolates what *this* run contributed, so the
    // server-side histogram count can be checked against our own tally.
    let metrics_before = scrape_metrics(&addr);

    let queries = GeneratorConfig::gaussian(requests * qpr, dim, 1.0).generate(seed);

    // One request body per request index — shared between the query-phase
    // workers and the follower replay, so both sides send identical bytes.
    let request_body = |r: usize| {
        let lo = r * qpr;
        if above_mode {
            obj(vec![
                ("queries", queries_json(&queries, lo, lo + qpr)),
                ("theta", Json::Num(theta)),
            ])
        } else {
            let mut fields =
                vec![("queries", queries_json(&queries, lo, lo + qpr)), ("k", Json::Num(k as f64))];
            if floored {
                fields.push(("floor", Json::Num(floor)));
            }
            obj(fields)
        }
    };
    let query_path = if above_mode { "/above-theta" } else { "/top-k" };

    // Fan out: `threads` workers split the request index space; every
    // request is an independent HTTP exchange over its own socket.
    let outcomes: Mutex<Vec<(usize, Outcome)>> = Mutex::new(Vec::with_capacity(requests));
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (request_body, outcomes, addr) = (&request_body, &outcomes, &addr);
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut r = t;
                while r < requests {
                    let body = request_body(r);
                    let path = query_path;
                    let start = Instant::now();
                    let outcome = match client::post(addr, path, &body) {
                        Ok((200, reply)) => {
                            let ns = start.elapsed().as_nanos() as u64;
                            let (lists, entries) = if above_mode {
                                match parse_entries(&reply) {
                                    Ok(entries) => (Vec::new(), entries),
                                    Err(e) => {
                                        local.push((r, Outcome::Error(e)));
                                        r += threads;
                                        continue;
                                    }
                                }
                            } else {
                                match parse_lists(&reply) {
                                    Ok(lists) => (lists, Vec::new()),
                                    Err(e) => {
                                        local.push((r, Outcome::Error(e)));
                                        r += threads;
                                        continue;
                                    }
                                }
                            };
                            Outcome::Ok { ns, lists, entries }
                        }
                        Ok((503, _)) => Outcome::Shed,
                        Ok((status, reply)) => Outcome::Error(format!("HTTP {status}: {reply:?}")),
                        Err(e) => Outcome::Error(e.to_string()),
                    };
                    local.push((r, outcome));
                    r += threads;
                }
                outcomes.lock().unwrap().append(&mut local);
            });
        }
    });
    let wall = wall_start.elapsed().as_secs_f64();

    let outcomes = outcomes.into_inner().unwrap();
    let latencies = Histogram::request_latency();
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut errors = 0usize;
    let mut answers: Vec<(usize, Vec<Vec<ScoredItem>>)> = Vec::new();
    let mut above_answers: Vec<(usize, Vec<AboveEntry>)> = Vec::new();
    for (r, outcome) in outcomes {
        match outcome {
            Outcome::Ok { ns, lists, entries } => {
                ok += 1;
                latencies.observe(ns as f64 / 1e9);
                if above_mode {
                    above_answers.push((r, entries));
                } else {
                    answers.push((r, lists));
                }
            }
            Outcome::Shed => shed += 1,
            Outcome::Error(e) => {
                errors += 1;
                eprintln!("loadgen: request {r} failed: {e}");
            }
        }
    }

    println!(
        "loadgen results ({} threads x {} requests, {} queries/request):",
        threads, requests, qpr
    );
    println!("  ok         {ok}");
    println!("  shed (503) {shed}");
    println!("  errors     {errors}");
    println!("  wall time  {wall:.3}s");
    println!(
        "  throughput {:.1} req/s | {:.1} queries/s",
        ok as f64 / wall,
        (ok * qpr) as f64 / wall
    );
    println!(
        "  latency    p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms",
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0)
    );

    // Cross-check the server's request accounting against our own tally:
    // on a clean run (nothing shed, nothing errored) the per-endpoint
    // histogram must have counted exactly the requests we sent — batched
    // or not. A disagreement means requests were lost or double-counted
    // somewhere in the serve dispatch, which is worth failing CI over.
    // The server records each observation just after writing the response
    // bytes, so the last request can race our scrape by microseconds —
    // rescrape briefly until the count settles at the expected value.
    let count_key = format!("lemp_http_request_duration_seconds_count{{path=\"{query_path}\"}}");
    let expected_count = metrics_before
        .as_ref()
        .map(|b| b.get(&count_key).copied().unwrap_or(0.0) + requests as f64);
    let mut metrics_after = scrape_metrics(&addr);
    for _ in 0..100 {
        match (&metrics_after, &expected_count) {
            (Some(after), Some(expected)) if after.get(&count_key) != Some(expected) => {
                std::thread::sleep(Duration::from_millis(5));
                metrics_after = scrape_metrics(&addr);
            }
            _ => break,
        }
    }
    let metric_delta = |name: &str| -> f64 {
        match (&metrics_before, &metrics_after) {
            (Some(before), Some(after)) => {
                after.get(name).copied().unwrap_or(0.0) - before.get(name).copied().unwrap_or(0.0)
            }
            _ => f64::NAN,
        }
    };
    let mut metrics_mismatch = false;
    if metrics_before.is_none() || metrics_after.is_none() {
        eprintln!("loadgen: warning: GET /metrics not scrapeable; skipping the histogram check");
    } else {
        let server_count = metric_delta(&count_key);
        println!(
            "  metrics    server counted {server_count} {query_path} requests \
             (sent {requests}, ok {ok})"
        );
        if shed == 0 && errors == 0 && server_count != requests as f64 {
            metrics_mismatch = true;
            eprintln!(
                "loadgen: histogram mismatch: server counted {server_count} {query_path} \
                 requests, this client sent {requests}"
            );
        }
    }

    // Optional exactness gate against the naive baseline — covers both
    // modes, so a sharded (or any) server can be verified end to end under
    // top-k *and* Above-θ load.
    let verify_path = args.get_str("verify-probes", "");
    let mut mismatches = 0usize;
    if !verify_path.is_empty() {
        match load_matrix(&verify_path) {
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
            Ok(probes) if above_mode => {
                let (expect_entries, _) = Naive.above_theta(&queries, &probes, theta);
                // Expected (local query row, probe, value) per request —
                // the value is checked too, so score corruption that keeps
                // entry membership intact still fails the gate.
                let mut per_request: Vec<Vec<AboveEntry>> = vec![Vec::new(); requests];
                for e in &expect_entries {
                    let r = e.query as usize / qpr;
                    per_request[r].push((e.query - (r * qpr) as u32, e.probe, e.value));
                }
                let key = |e: &AboveEntry| (e.0, e.1);
                for list in &mut per_request {
                    list.sort_unstable_by_key(key);
                }
                for (r, entries) in &above_answers {
                    let mut got = entries.clone();
                    got.sort_unstable_by_key(key);
                    let expect = &per_request[*r];
                    let matches = got.len() == expect.len()
                        && got.iter().zip(expect).all(|(g, e)| {
                            g.0 == e.0
                                && g.1 == e.1
                                && (g.2 - e.2).abs() <= 1e-9 * e.2.abs().max(1.0)
                        });
                    if !matches {
                        mismatches += 1;
                        eprintln!("loadgen: request {r} diverges from the naive baseline");
                    }
                }
                println!(
                    "  verify     {} of {ok} Above-θ answers checked against Naive, {mismatches} mismatches",
                    above_answers.len()
                );
            }
            Ok(probes) => {
                // Row-Top-k ground truth; with a floor, filter the naive
                // lists (exact: any entry ≥ floor outside the plain top-k
                // is dominated by k entries that are themselves ≥ floor).
                let (mut expect, _) = Naive.row_top_k(&queries, &probes, k);
                if floored {
                    for list in &mut expect {
                        list.retain(|item| item.score >= floor);
                    }
                }
                for (r, lists) in &answers {
                    let lo = r * qpr;
                    if !topk_equivalent(lists, &expect[lo..lo + qpr].to_vec(), 1e-9) {
                        mismatches += 1;
                        eprintln!("loadgen: request {r} diverges from the naive baseline");
                    }
                }
                let mode = if floored { "floored Row-Top-k" } else { "Row-Top-k" };
                println!(
                    "  verify     {} of {ok} {mode} answers checked against Naive, {mismatches} mismatches",
                    answers.len()
                );
            }
        }
    }

    // Replication consistency gate: wait for the follower to drain its
    // lag, then replay every acknowledged request against it. The leader's
    // answers are the reference — the gate proves no acknowledged edit or
    // answer was lost or mangled on the wire.
    let mut follower_mismatches = 0usize;
    let mut follower_checked = 0usize;
    if !follower.is_empty() {
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match replication_stats(&follower) {
                Some((_, 0)) => break,
                state => {
                    if Instant::now() >= deadline {
                        match state {
                            Some((_, lag)) => eprintln!(
                                "loadgen: follower {follower} is still {lag} LSNs behind \
                                 after 30s"
                            ),
                            None => eprintln!(
                                "loadgen: follower {follower} reports no replication state"
                            ),
                        }
                        std::process::exit(1);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
        }
        println!("loadgen: follower {follower} lag_lsn 0");
        answers.sort_unstable_by_key(|(r, _)| *r);
        above_answers.sort_unstable_by_key(|(r, _)| *r);
        let entry_key = |e: &AboveEntry| (e.0, e.1);
        for r in answers.iter().map(|(r, _)| *r).chain(above_answers.iter().map(|(r, _)| *r)) {
            let body = request_body(r);
            let reply = match client::post(&follower, query_path, &body) {
                Ok((200, reply)) => reply,
                Ok((status, reply)) => {
                    eprintln!("loadgen: follower request {r} returned {status}: {reply:?}");
                    follower_mismatches += 1;
                    continue;
                }
                Err(e) => {
                    eprintln!("loadgen: follower request {r} failed: {e}");
                    follower_mismatches += 1;
                    continue;
                }
            };
            follower_checked += 1;
            let matches_leader = if above_mode {
                let leader = &above_answers.iter().find(|(i, _)| *i == r).unwrap().1;
                let mut expect = leader.clone();
                expect.sort_unstable_by_key(entry_key);
                match parse_entries(&reply) {
                    Ok(mut got) => {
                        got.sort_unstable_by_key(entry_key);
                        got.len() == expect.len()
                            && got.iter().zip(&expect).all(|(g, e)| {
                                g.0 == e.0 && g.1 == e.1 && (g.2 - e.2).abs() <= 1e-12
                            })
                    }
                    Err(_) => false,
                }
            } else {
                let leader = &answers.iter().find(|(i, _)| *i == r).unwrap().1;
                match parse_lists(&reply) {
                    Ok(got) => topk_equivalent(&got, leader, 1e-12),
                    Err(_) => false,
                }
            };
            if !matches_leader {
                follower_mismatches += 1;
                eprintln!("loadgen: follower request {r} diverges from the leader's answer");
            }
        }
        println!(
            "  follower   {follower_checked} answers replayed against {follower}, \
             {follower_mismatches} mismatches"
        );
    }

    // Machine-readable report for CI perf-trajectory archiving.
    if !report_path.is_empty() {
        let mode = if above_mode {
            "above-theta"
        } else if floored {
            "top-k-floor"
        } else {
            "top-k"
        };
        let pct = |p: f64| {
            let v = percentile(&latencies, p);
            if v.is_finite() {
                Json::Num(v)
            } else {
                Json::Null
            }
        };
        let verified = if above_mode { above_answers.len() } else { answers.len() };
        let doc = obj(vec![
            ("mode", Json::Str(mode.into())),
            ("threads", Json::Num(threads as f64)),
            ("requests", Json::Num(requests as f64)),
            ("qpr", Json::Num(qpr as f64)),
            ("k", if above_mode { Json::Null } else { Json::Num(k as f64) }),
            ("theta", if above_mode { Json::Num(theta) } else { Json::Null }),
            ("floor", if floored { Json::Num(floor) } else { Json::Null }),
            ("ok", Json::Num(ok as f64)),
            ("shed", Json::Num(shed as f64)),
            ("errors", Json::Num(errors as f64)),
            ("inserted_probes", Json::Num(inserted_probes as f64)),
            ("quorum_timeouts", Json::Num(quorum_timeouts as f64)),
            (
                "edit_latency_ms",
                if edit_latencies.count() == 0 {
                    Json::Null
                } else {
                    let ep = |p: f64| Json::Num(percentile(&edit_latencies, p));
                    obj(vec![("p50", ep(50.0)), ("p95", ep(95.0)), ("p99", ep(99.0))])
                },
            ),
            (
                "shard_inserts",
                if shard_inserts.is_empty() {
                    Json::Null
                } else {
                    Json::Arr(shard_inserts.iter().map(|&n| Json::Num(n as f64)).collect())
                },
            ),
            ("wall_seconds", Json::Num(wall)),
            ("throughput_rps", Json::Num(ok as f64 / wall)),
            ("throughput_qps", Json::Num((ok * qpr) as f64 / wall)),
            ("latency_ms", obj(vec![("p50", pct(50.0)), ("p95", pct(95.0)), ("p99", pct(99.0))])),
            (
                "verify",
                if verify_path.is_empty() {
                    Json::Null
                } else {
                    obj(vec![
                        ("checked", Json::Num(verified as f64)),
                        ("mismatches", Json::Num(mismatches as f64)),
                    ])
                },
            ),
            (
                "replication",
                // Sampled at the end of the run: the follower when one is
                // gated, otherwise whatever role the target itself reports.
                match replication_stats(if follower.is_empty() { &addr } else { &follower }) {
                    Some((role, lag)) => {
                        obj(vec![("role", Json::Str(role)), ("lag_lsn", Json::Num(lag as f64))])
                    }
                    None => Json::Null,
                },
            ),
            (
                "engine_memory",
                // The server's probe-residency split (full-precision vs
                // quantized bytes, per shard), sampled at the end of the
                // run — CI archives it to track what quantization saves.
                engine_memory(&addr).unwrap_or(Json::Null),
            ),
            (
                "metrics",
                // What this run contributed to the server's cumulative
                // `/metrics` counters (after-minus-before deltas): the
                // engine telemetry the flat /stats counters cannot see.
                if metrics_before.is_some() && metrics_after.is_some() {
                    let d = |name: &str| Json::Num(metric_delta(name));
                    let mix: Vec<(&str, Json)> = lemp_serve::metrics::ALGO_LABELS
                        .iter()
                        .filter_map(|&algo| {
                            let key = format!("lemp_engine_method_pairs_total{{algo=\"{algo}\"}}");
                            let delta = metric_delta(&key);
                            (delta > 0.0).then_some((algo, Json::Num(delta)))
                        })
                        .collect();
                    obj(vec![
                        ("request_count", d(&count_key)),
                        (
                            "request_seconds",
                            d(&format!(
                                "lemp_http_request_duration_seconds_sum{{path=\"{query_path}\"}}"
                            )),
                        ),
                        ("engine_queries", d("lemp_engine_queries_total")),
                        ("engine_candidates", d("lemp_engine_candidates_total")),
                        ("engine_pruned", d("lemp_engine_pruned_total")),
                        ("engine_results", d("lemp_engine_results_total")),
                        ("plan_cache_hits", d("lemp_plan_cache_hits_total")),
                        ("plan_cache_misses", d("lemp_plan_cache_misses_total")),
                        ("plan_refreshes", d("lemp_plan_refreshes_total")),
                        ("method_pairs", obj(mix)),
                    ])
                } else {
                    Json::Null
                },
            ),
        ]);
        if let Err(e) = std::fs::write(&report_path, doc.render()) {
            eprintln!("loadgen: cannot write report {report_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("loadgen: wrote JSON report -> {report_path}");
    }

    if errors > 0 || mismatches > 0 || follower_mismatches > 0 || metrics_mismatch || ok == 0 {
        std::process::exit(1);
    }
}

/// Samples `engine.memory` from a server's `/stats` (full-precision vs
/// quantized probe residency, per shard); `None` when the server is
/// unreachable or predates the field.
fn engine_memory(addr: &str) -> Option<Json> {
    let (status, stats) = client::get(addr, "/stats").ok()?;
    if status != 200 {
        return None;
    }
    stats.get("engine")?.get("memory").cloned()
}

/// Samples `replication.{role, lag_lsn}` from a server's `/stats`; `None`
/// when the server is unreachable or reports no replication role.
fn replication_stats(addr: &str) -> Option<(String, u64)> {
    let (status, stats) = client::get(addr, "/stats").ok()?;
    if status != 200 {
        return None;
    }
    let repl = stats.get("replication")?;
    let role = repl.get("role").and_then(Json::as_str)?.to_string();
    let lag = repl.get("lag_lsn").and_then(Json::as_u64).unwrap_or(0);
    Some((role, lag))
}

fn parse_lists(body: &Json) -> Result<Vec<Vec<ScoredItem>>, String> {
    let lists = body
        .get("lists")
        .and_then(Json::as_arr)
        .ok_or_else(|| "response misses \"lists\"".to_string())?;
    lists
        .iter()
        .map(|list| {
            list.as_arr()
                .ok_or_else(|| "list is not an array".to_string())?
                .iter()
                .map(|item| {
                    let id = item
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| "item misses \"id\"".to_string())?
                        as usize;
                    let score = item
                        .get("score")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| "item misses \"score\"".to_string())?;
                    Ok(ScoredItem { id, score })
                })
                .collect()
        })
        .collect()
}

fn parse_entries(body: &Json) -> Result<Vec<AboveEntry>, String> {
    let entries = body
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| "response misses \"entries\"".to_string())?;
    entries
        .iter()
        .map(|e| {
            let q = e
                .get("query")
                .and_then(Json::as_u64)
                .ok_or_else(|| "entry misses \"query\"".to_string())? as u32;
            let p = e
                .get("probe")
                .and_then(Json::as_u64)
                .ok_or_else(|| "entry misses \"probe\"".to_string())? as u32;
            let v = e
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| "entry misses \"value\"".to_string())?;
            Ok((q, p, v))
        })
        .collect()
}
