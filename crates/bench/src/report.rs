//! Fixed-width table printing in the visual layout of the paper's tables,
//! plus a tiny `key=value` CLI argument parser shared by the `repro-*`
//! binaries.

use std::collections::HashMap;

/// Prints a titled fixed-width table; the first header is left-aligned, the
/// rest right-aligned (the layout of Tables 3–6).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}  ", cell, w = widths[0]));
            } else {
                line.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let header_line = fmt_row(&header_cells);
    println!("{header_line}");
    println!("{}", "-".repeat(header_line.trim_end().len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Seconds → a compact human duration (`431ms`, `2.41s`, `1.2h`).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else if s < 7200.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{:.1}h", s / 3600.0)
    }
}

/// Parses `key=value` command-line arguments with typed getters.
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments (ignoring anything without `=`).
    pub fn parse() -> Self {
        let values = std::env::args()
            .skip(1)
            .filter_map(|a| {
                a.split_once('=')
                    .map(|(k, v)| (k.trim_start_matches('-').to_string(), v.to_string()))
            })
            .collect();
        Self { values }
    }

    /// `f64` argument with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// `u64` argument with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// String argument with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values.get(key).cloned().unwrap_or_else(|| default.to_string())
    }
}

/// Standard preamble all `repro-*` binaries print.
pub fn preamble(what: &str, scale: f64, seed: u64) {
    println!("LEMP reproduction — {what}");
    println!(
        "scale={scale} seed={seed}  (override with scale=<f> seed=<u>; paper sizes are scale=1.0)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_covers_ranges() {
        assert_eq!(fmt_secs(0.0000015), "2us");
        assert_eq!(fmt_secs(0.0005), "500us");
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(300.0), "5.0m");
        assert_eq!(fmt_secs(7200.0), "2.0h");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["algo", "time"],
            &[vec!["Naive".into(), "1.0s".into()], vec!["LEMP-LI".into(), "0.1s".into()]],
        );
    }
}
