//! Workload construction for the paper's experiments.
//!
//! A workload is a materialized (queries, probes) pair from one of the
//! Table 1 dataset specs at a configurable scale, plus the θ calibration
//! for the "@recall level" Above-θ experiments (Sec. 6.1: "we selected θ
//! such that we retrieve the top-10³ … -10⁷ entries in the whole product
//! matrix").
//!
//! At laptop scale the product has fewer entries than the paper's 10¹¹, so
//! recall targets are expressed as *fractions* of the product size spanning
//! the same relative regime; labels carry the absolute counts for
//! readability. See EXPERIMENTS.md for the mapping.

use lemp_data::calibrate;
use lemp_data::datasets::{Dataset, DatasetSpec};
use lemp_linalg::VectorStore;

/// A materialized benchmark workload.
pub struct Workload {
    /// Dataset display name (paper spelling).
    pub name: String,
    /// The resolved spec (after scaling).
    pub spec: DatasetSpec,
    /// Query vectors (rows).
    pub queries: VectorStore,
    /// Probe vectors (rows).
    pub probes: VectorStore,
}

impl Workload {
    /// Materializes `dataset` at `scale` deterministically.
    pub fn new(dataset: Dataset, scale: f64, seed: u64) -> Self {
        let spec = dataset.spec().scaled(scale);
        let (queries, probes) = spec.generate(seed);
        Self { name: spec.name.clone(), spec, queries, probes }
    }

    /// Product-matrix size `m·n`.
    pub fn pairs(&self) -> usize {
        self.queries.len() * self.probes.len()
    }

    /// The five recall levels for this workload: `(label, target, θ)`.
    ///
    /// Targets are geometric fractions `10⁻⁶ … 10⁻²` of the product size
    /// (floored at 50 results so calibration stays meaningful), θ calibrated
    /// by pair sampling.
    pub fn recall_levels(&self, seed: u64) -> Vec<RecallLevel> {
        let total = self.pairs() as f64;
        let mut out = Vec::new();
        let mut last_target = 0usize;
        for (i, frac) in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2].into_iter().enumerate() {
            let target = ((total * frac) as usize).max(50).min(self.pairs());
            if target == last_target {
                continue; // tiny workloads collapse adjacent levels
            }
            last_target = target;
            let samples = 200_000.min(self.pairs().max(1));
            let Some(theta) = calibrate::sampled_theta(
                &self.queries,
                &self.probes,
                target,
                samples,
                seed + i as u64,
            ) else {
                continue;
            };
            out.push(RecallLevel { label: format!("@{}", fmt_count(target)), target, theta });
        }
        out
    }

    /// One mid-range recall level (used by preprocessing measurements).
    pub fn mid_theta(&self, seed: u64) -> f64 {
        let levels = self.recall_levels(seed);
        levels.get(levels.len() / 2).map_or(1.0, |l| l.theta)
    }
}

/// One Above-θ workload point.
#[derive(Debug, Clone)]
pub struct RecallLevel {
    /// Human-readable label, e.g. `@10k`.
    pub label: String,
    /// Intended result count.
    pub target: usize,
    /// Calibrated threshold.
    pub theta: f64,
}

/// `1234` → `1.2k`, `2000000` → `2M` (labels of the paper's figures).
pub fn fmt_count(n: usize) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{}k", n / 1000)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// The k values of the paper's Row-Top-k experiments (Sec. 6.1).
pub const TOP_K_VALUES: [usize; 4] = [1, 5, 10, 50];

/// The four Row-Top-k datasets of Table 4 / Fig. 7c–f.
pub fn topk_datasets() -> [Dataset; 4] {
    [Dataset::IeSvdT, Dataset::IeNmfT, Dataset::Netflix, Dataset::Kdd]
}

/// The two Above-θ datasets of Table 3 / Fig. 7a–b.
pub fn above_datasets() -> [Dataset; 2] {
    [Dataset::IeSvd, Dataset::IeNmf]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_materializes_at_scale() {
        let w = Workload::new(Dataset::Netflix, 0.002, 1);
        assert_eq!(w.queries.len(), 960);
        assert_eq!(w.probes.len(), 64); // floor kicks in: 17770·0.002 ≈ 36 → 64
        assert_eq!(w.name, "Netflix");
    }

    #[test]
    fn recall_levels_are_increasing_targets_decreasing_theta() {
        let w = Workload::new(Dataset::IeSvd, 0.003, 2);
        let levels = w.recall_levels(3);
        assert!(levels.len() >= 3, "expected several distinct levels");
        for pair in levels.windows(2) {
            assert!(pair[1].target > pair[0].target);
            assert!(pair[1].theta <= pair[0].theta + 1e-12);
        }
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(50), "50");
        assert_eq!(fmt_count(1_500), "1.5k");
        assert_eq!(fmt_count(100_000), "100k");
        assert_eq!(fmt_count(1_200_000), "1.2M");
        assert_eq!(fmt_count(10_000_000), "10M");
    }
}
