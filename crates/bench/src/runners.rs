//! One-call wrappers running each compared algorithm on a workload.
//!
//! Every wrapper measures what the paper measures (Sec. 6.1 "Methodology"):
//! **overall wall-clock time including preprocessing, tuning, and
//! retrieval**, plus the average candidate-set size per query.

use std::time::Instant;

use lemp_baselines::{CoverTree, DualTree, Naive, TaIndex};
use lemp_core::{Lemp, LempVariant};

use crate::workload::Workload;

/// An algorithm under comparison (the paper's Figs. 5–6 lineup plus the
/// LEMP variants of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Full product scan.
    Naive,
    /// Fagin's threshold algorithm over the whole probe matrix.
    Ta,
    /// Single cover tree (FastMKS).
    Tree,
    /// Dual cover trees.
    DTree,
    /// A LEMP variant.
    Lemp(LempVariant),
}

impl Algo {
    /// The paper's lineup for Tables 3–4 / Figs. 5–6.
    pub fn paper_lineup() -> [Algo; 5] {
        [Algo::Naive, Algo::DTree, Algo::Tree, Algo::Ta, Algo::Lemp(LempVariant::LI)]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> String {
        match self {
            Algo::Naive => "Naive".into(),
            Algo::Ta => "TA".into(),
            Algo::Tree => "Tree".into(),
            Algo::DTree => "D-Tree".into(),
            Algo::Lemp(v) => v.name().into(),
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm name.
    pub algo: String,
    /// Total wall-clock seconds (preprocessing + tuning + retrieval).
    pub total_s: f64,
    /// Preprocessing (index construction) seconds.
    pub preprocess_s: f64,
    /// Average candidates (full inner products) per query.
    pub candidates_per_query: f64,
    /// Result entries produced.
    pub results: u64,
}

/// Runs one algorithm on the Above-θ problem.
pub fn run_above(algo: Algo, w: &Workload, theta: f64) -> Measurement {
    let start = Instant::now();
    let (counters, results) = match algo {
        Algo::Naive => {
            let (entries, c) = Naive.above_theta(&w.queries, &w.probes, theta);
            (c, entries.len() as u64)
        }
        Algo::Ta => {
            let index = TaIndex::build(&w.probes);
            let (entries, c) = index.above_theta(&w.queries, theta);
            (c, entries.len() as u64)
        }
        Algo::Tree => {
            let tree = CoverTree::build(&w.probes, 1.3);
            let (entries, c) = tree.above_theta(&w.queries, theta);
            (c, entries.len() as u64)
        }
        Algo::DTree => {
            let dt = DualTree::build(&w.queries, &w.probes, 1.3);
            let (entries, c) = dt.above_theta(theta);
            (c, entries.len() as u64)
        }
        Algo::Lemp(variant) => {
            let mut engine = Lemp::builder().variant(variant).build(&w.probes);
            let out = engine.above_theta(&w.queries, theta);
            (out.stats.counters, out.entries.len() as u64)
        }
    };
    Measurement {
        algo: algo.name(),
        total_s: start.elapsed().as_secs_f64(),
        preprocess_s: counters.preprocess_ns as f64 / 1e9,
        candidates_per_query: counters.candidates_per_query(),
        results,
    }
}

/// Runs one algorithm on the Row-Top-k problem.
pub fn run_topk(algo: Algo, w: &Workload, k: usize) -> Measurement {
    let start = Instant::now();
    let (counters, results) = match algo {
        Algo::Naive => {
            let (lists, c) = Naive.row_top_k(&w.queries, &w.probes, k);
            (c, lists.iter().map(|l| l.len() as u64).sum())
        }
        Algo::Ta => {
            let index = TaIndex::build(&w.probes);
            let (lists, c) = index.row_top_k(&w.queries, k);
            (c, lists.iter().map(|l| l.len() as u64).sum())
        }
        Algo::Tree => {
            let tree = CoverTree::build(&w.probes, 1.3);
            let (lists, c) = tree.row_top_k(&w.queries, k);
            (c, lists.iter().map(|l| l.len() as u64).sum())
        }
        Algo::DTree => {
            let dt = DualTree::build(&w.queries, &w.probes, 1.3);
            let (lists, c) = dt.row_top_k(k);
            (c, lists.iter().map(|l| l.len() as u64).sum())
        }
        Algo::Lemp(variant) => {
            let mut engine = Lemp::builder().variant(variant).build(&w.probes);
            let out = engine.row_top_k(&w.queries, k);
            let n = out.lists.iter().map(|l| l.len() as u64).sum();
            (out.stats.counters, n)
        }
    };
    Measurement {
        algo: algo.name(),
        total_s: start.elapsed().as_secs_f64(),
        preprocess_s: counters.preprocess_ns as f64 / 1e9,
        candidates_per_query: counters.candidates_per_query(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::datasets::Dataset;

    #[test]
    fn all_algorithms_produce_matching_result_counts() {
        let w = Workload::new(Dataset::Netflix, 0.0005, 4);
        let theta = w.mid_theta(5);
        let baseline = run_above(Algo::Naive, &w, theta);
        for algo in [Algo::Ta, Algo::Tree, Algo::DTree, Algo::Lemp(LempVariant::LI)] {
            let m = run_above(algo, &w, theta);
            assert_eq!(m.results, baseline.results, "{} diverges", m.algo);
            assert!(m.total_s > 0.0);
        }
    }

    #[test]
    fn topk_runs_produce_k_results_per_query() {
        let w = Workload::new(Dataset::IeSvdT, 0.0008, 6);
        let k = 3;
        for algo in Algo::paper_lineup() {
            let m = run_topk(algo, &w, k);
            assert_eq!(m.results, (w.queries.len() * k) as u64, "{}", m.algo);
        }
    }
}
