//! Benchmark harness shared code: workload construction and table printing
//! for regenerating every table and figure of the LEMP paper.
//!
//! The actual regenerators are the `repro-*` binaries (`src/bin/`) and the
//! criterion benches (`benches/`); this library holds what they share:
//!
//! * [`workload`] — materialized datasets with calibrated θ values for the
//!   paper's "@recall-level" Above-θ workloads (Sec. 6.1) and the k sweeps.
//! * [`report`] — fixed-width table printing in the layout of Tables 3–6.
//! * [`runners`] — one-call wrappers running each algorithm (Naive, TA,
//!   Tree, D-Tree, and the nine LEMP variants) on a workload and returning
//!   the measurements the paper reports (total time, |C|/q, preprocessing).

#![warn(missing_docs)]

pub mod report;
pub mod runners;
pub mod workload;
