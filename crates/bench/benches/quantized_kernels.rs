//! Micro-benchmarks of the quantized bucket scan: the small-LUT
//! gather-accumulate kernel against the full-precision f64 scan it
//! replaces, across bucket sizes and code widths.
//!
//! The quantized path does `m` table lookups per probe (plus one LUT build
//! of `m · k` dots per bucket visit) where the exact path does one
//! `dim`-length dot per probe — the ISSUE's ≥ 2× scan-throughput target at
//! 8 bits is measured here, and the scalar/AVX2 gap of the LUT kernel is
//! isolated the same way `kernels.rs` isolates it for `dot`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_core::QuantizedBucket;
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::{kernels, simd, VectorStore};
use std::hint::black_box;

const DIM: usize = 50;

fn dirs(n: usize, seed: u64) -> VectorStore {
    let (_, d) = GeneratorConfig::gaussian(n, DIM, 0.0).generate(seed).decompose();
    d
}

/// The exact bucket scan the LUT replaces: one f64 dot per probe.
fn full_scan(query: &[f64], probes: &VectorStore, out: &mut Vec<f64>) {
    out.clear();
    out.extend(probes.iter().map(|p| kernels::dot(query, p)));
}

fn bench_scan_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized/scan");
    for n in [256usize, 1024, 4096] {
        let probes = dirs(n, 7);
        let query = dirs(1, 11).vector(0).to_vec();
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("full_f64", n), &n, |b, _| {
            b.iter(|| full_scan(black_box(&query), black_box(&probes), &mut out));
        });
        for bits in [4u8, 8, 12] {
            let quant = QuantizedBucket::train(&probes, bits, 1).unwrap();
            let mut lut = Vec::new();
            // LUT build + gather scan: the whole per-bucket-visit cost.
            group.bench_with_input(BenchmarkId::new(&format!("lut{bits}"), n), &n, |b, _| {
                b.iter(|| {
                    quant.fill_lut(black_box(&query), &mut lut);
                    quant.scores(&lut, &mut out);
                });
            });
            // Gather scan alone: the marginal per-probe cost once the LUT
            // amortizes over a large bucket.
            quant.fill_lut(&query, &mut lut);
            group.bench_with_input(BenchmarkId::new(&format!("gather{bits}"), n), &n, |b, _| {
                b.iter(|| quant.scores(black_box(&lut), &mut out));
            });
        }
    }
    group.finish();
}

/// Scalar vs AVX2 on the 8-bit gather kernel (bit-identical outputs; this
/// measures the pure throughput gap of `lut_scan_u8`).
fn bench_scan_isa(c: &mut Criterion) {
    let mut isas = vec![simd::Isa::Scalar];
    if simd::avx2_supported() {
        isas.push(simd::Isa::Avx2);
    }
    let probes = dirs(4096, 7);
    let query = dirs(1, 11).vector(0).to_vec();
    let quant = QuantizedBucket::train(&probes, 8, 1).unwrap();
    let mut lut = Vec::new();
    quant.fill_lut(&query, &mut lut);
    let mut out = Vec::new();
    let mut group = c.benchmark_group("quantized/gather_isa");
    for &isa in &isas {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{isa:?}")), &isa, |b, _| {
            let prev = simd::override_isa(isa);
            b.iter(|| quant.scores(black_box(&lut), &mut out));
            simd::override_isa(prev);
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scan_vs_full, bench_scan_isa
}
criterion_main!(benches);
