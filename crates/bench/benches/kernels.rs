//! Micro-benchmarks of the substrate kernels: the inner product the whole
//! paper's cost model is denominated in ("if an inner product computation
//! takes about 100 ns on average …", Sec. 1), plus the bucket-index scan
//! primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_core::index::{ColumnIndex, RowIndex};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::{kernels, simd};
use std::hint::black_box;

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dot");
    for dim in [10usize, 50, 100, 500] {
        let a: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            bencher.iter(|| kernels::dot(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

/// Scalar vs AVX2 on the same machine (the two dispatch targets produce
/// bit-identical values; this measures the pure throughput gap).
fn bench_dot_isa(c: &mut Criterion) {
    let mut isas = vec![simd::Isa::Scalar];
    if simd::avx2_supported() {
        isas.push(simd::Isa::Avx2);
    }
    let mut group = c.benchmark_group("kernels/dot_isa");
    for dim in [10usize, 50, 100, 500] {
        let a: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
        for &isa in &isas {
            let label = format!("{isa:?}/{dim}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &dim, |bencher, _| {
                let prev = simd::override_isa(isa);
                bencher.iter(|| kernels::dot(black_box(&a), black_box(&b)));
                simd::override_isa(prev);
            });
        }
    }
    group.finish();
}

fn bench_index_build_and_scan(c: &mut Criterion) {
    let dirs = {
        let (_, d) = GeneratorConfig::gaussian(2000, 50, 0.0).generate(1).decompose();
        d
    };
    c.bench_function("kernels/column_index_build_2000x50", |b| {
        b.iter(|| ColumnIndex::build(black_box(&dirs)));
    });
    c.bench_function("kernels/row_index_build_2000x50", |b| {
        b.iter(|| RowIndex::build(black_box(&dirs)));
    });
    let col = ColumnIndex::build(&dirs);
    c.bench_function("kernels/scan_range_search", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for f in 0..50 {
                let (lo, hi) = col.scan_range(black_box(f), -0.1, 0.1);
                acc += hi - lo;
            }
            acc
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dot, bench_dot_isa, bench_index_build_and_scan
}
criterion_main!(benches);
