//! Ablation for the Sec. 3.2 bucketization knobs: the length ratio that
//! opens a new bucket (paper: 0.9) and the minimum bucket size (paper: 30).
//!
//! Shape targets:
//! * the ratio is a mild knob — too close to 1.0 creates many tiny buckets
//!   (per-bucket overhead), too low mixes lengths inside buckets (weaker
//!   local thresholds, more candidates);
//! * dropping the minimum size hurts on skewed data where the ratio rule
//!   alone would fragment the tail into one-vector buckets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::{BucketPolicy, Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn bench_length_ratio(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::IeSvdT, 0.002), (Dataset::Netflix, 0.002)] {
        let w = Workload::new(ds, scale, 42);
        let mut group = c.benchmark_group(format!("ablation_ratio/{}", w.name));
        for ratio in [0.5, 0.7, 0.9, 0.99] {
            group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &ratio| {
                b.iter(|| {
                    let policy = BucketPolicy { length_ratio: ratio, ..Default::default() };
                    let mut engine =
                        Lemp::builder().variant(LempVariant::LI).policy(policy).build(&w.probes);
                    engine.row_top_k(&w.queries, 10)
                });
            });
        }
        group.finish();
    }
}

fn bench_min_bucket(c: &mut Criterion) {
    let w = Workload::new(Dataset::IeSvdT, 0.002, 42);
    let mut group = c.benchmark_group(format!("ablation_min_bucket/{}", w.name));
    for min_bucket in [1usize, 10, 30, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(min_bucket),
            &min_bucket,
            |b, &min_bucket| {
                b.iter(|| {
                    let policy = BucketPolicy { min_bucket, ..Default::default() };
                    let mut engine =
                        Lemp::builder().variant(LempVariant::LI).policy(policy).build(&w.probes);
                    engine.row_top_k(&w.queries, 10)
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_length_ratio, bench_min_bucket
}
criterion_main!(benches);
