//! Thread-scaling of the retrieval phase (a faithful extension: queries
//! are independent, so the paper's single-threaded setting parallelizes
//! trivially over disjoint query ranges).
//!
//! Shape target: near-linear scaling while the probe buckets stay
//! cache-resident per core; preprocessing and tuning are serial and bound
//! the speedup at small scales (Amdahl).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn bench_threads(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::Kdd, 0.002), (Dataset::IeSvdT, 0.003)] {
        let w = Workload::new(ds, scale, 42);
        let mut group = c.benchmark_group(format!("parallel_scaling/{}", w.name));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| {
                    // Build (and lazily index) once per thread count; measure
                    // retrieval only, as the paper's tables separate phases.
                    let mut engine =
                        Lemp::builder().variant(LempVariant::LI).threads(threads).build(&w.probes);
                    let _ = engine.row_top_k(&w.queries, 10); // warm indexes
                    b.iter(|| engine.row_top_k(&w.queries, 10));
                },
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_threads
}
criterion_main!(benches);
