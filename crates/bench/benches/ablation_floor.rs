//! Ablation for the floored Row-Top-k extension: does feeding the score
//! floor into the running threshold `θ′` (pruning) beat running the plain
//! Row-Top-k and filtering afterwards?
//!
//! Shape target: at a loose floor the two are equivalent (the floor never
//! binds); the tighter the floor, the larger the pruning win — a tight
//! floor lets the driver skip whole buckets that the post-filter variant
//! still scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn bench_floor(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::IeSvdT, 0.003), (Dataset::Netflix, 0.003)] {
        let w = Workload::new(ds, scale, 42);
        let k = 10;
        // Calibrate floors from the k-th score distribution of one plain run.
        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let plain = engine.row_top_k(&w.queries, k);
        let mut kth: Vec<f64> =
            plain.lists.iter().filter_map(|l| l.last().map(|i| i.score)).collect();
        kth.sort_by(f64::total_cmp);
        if kth.is_empty() {
            continue;
        }
        let floors = [
            ("loose-p10", kth[kth.len() / 10]),
            ("median", kth[kth.len() / 2]),
            ("tight-p90", kth[kth.len() * 9 / 10]),
        ];

        let mut group = c.benchmark_group(format!("ablation_floor/{}", w.name));
        for (label, floor) in floors {
            group.bench_function(BenchmarkId::from_parameter(format!("prune/{label}")), |b| {
                b.iter(|| {
                    let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
                    engine.row_top_k_with_floor(&w.queries, k, floor)
                });
            });
            group.bench_function(
                BenchmarkId::from_parameter(format!("post-filter/{label}")),
                |b| {
                    b.iter(|| {
                        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
                        let mut out = engine.row_top_k(&w.queries, k);
                        for list in &mut out.lists {
                            list.retain(|i| i.score >= floor);
                        }
                        out
                    });
                },
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_floor
}
criterion_main!(benches);
