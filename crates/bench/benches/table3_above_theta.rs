//! **Table 3 / Fig. 5 / Fig. 6a** as a criterion bench: Above-θ across the
//! paper's algorithm lineup on the IE datasets, at a low ("Fig. 5, @1k") and
//! a high ("Fig. 6a, @1M") recall level.
//!
//! Shape target (paper): LEMP fastest, then Tree/TA, D-Tree last among the
//! indexes, Naive θ-independent and slowest on skewed data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::runners::{run_above, Algo};
use lemp_bench::workload::Workload;
use lemp_data::datasets::Dataset;

fn bench_above(c: &mut Criterion) {
    for ds in [Dataset::IeSvd, Dataset::IeNmf] {
        let w = Workload::new(ds, 0.002, 42);
        let levels = w.recall_levels(43);
        let low = levels.first().expect("levels").clone();
        let high = levels.last().expect("levels").clone();
        for (fig, level) in [("fig5_low", low), ("fig6a_high", high)] {
            let mut group = c.benchmark_group(format!("table3/{}/{}", w.name, fig));
            for algo in Algo::paper_lineup() {
                group.bench_with_input(
                    BenchmarkId::from_parameter(algo.name()),
                    &algo,
                    |b, &algo| {
                        b.iter(|| run_above(algo, &w, level.theta));
                    },
                );
            }
            group.finish();
        }
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_above
}
criterion_main!(benches);
