//! Shard fan-out scaling: one warmed engine answering a whole query batch,
//! at S = 1 (the unsharded serial baseline) versus S ∈ {2, 4, 8} shards
//! fanned out across scoped threads.
//!
//! Shape target: ≥ 1.5× throughput over S = 1 on a multi-core runner for
//! the batch workload (the acceptance gate of the sharding PR), trending
//! toward the core count while per-shard buckets stay cache-resident —
//! the same Amdahl ceiling as `parallel_scaling`, reached through data
//! parallelism instead of query-range parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::shard::ShardPolicy;
use lemp_core::{ShardedLemp, WarmGoal};
use lemp_data::datasets::Dataset;

fn bench_shards(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::Kdd, 0.002), (Dataset::Netflix, 0.004)] {
        let w = Workload::new(ds, scale, 42);
        let mut group = c.benchmark_group(format!("sharded_scaling/{}", w.name));
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
                let mut engine = ShardedLemp::builder()
                    .shards(shards)
                    .policy(ShardPolicy::LengthBanded)
                    .threads(shards)
                    .build(&w.probes);
                engine.warm(&w.queries, WarmGoal::TopK(10));
                let mut scratch = engine.make_scratch();
                b.iter(|| engine.row_top_k_shared(&w.queries, 10, &mut scratch));
            });
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_shards
}
criterion_main!(benches);
