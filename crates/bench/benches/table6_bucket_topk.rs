//! **Table 6 / Fig. 7c–f** as a criterion bench: the nine LEMP bucket-method
//! variants on Row-Top-k (IE-SVDᵀ and Netflix shapes) at k = 10.
//!
//! Shape target (paper): LEMP-LI best or tied-best; INCR ≫ COORD on
//! low-skew data; TA-in-bucket far better than standalone TA; L2AP's
//! aggressive filters cost more than they save vs INCR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::runners::{run_topk, Algo};
use lemp_bench::workload::Workload;
use lemp_core::LempVariant;
use lemp_data::datasets::Dataset;

fn bench_variants_topk(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::IeSvdT, 0.002), (Dataset::Netflix, 0.02)] {
        let w = Workload::new(ds, scale, 42);
        let mut group = c.benchmark_group(format!("table6/{}/k10", w.name));
        for variant in LempVariant::all() {
            group.bench_with_input(
                BenchmarkId::from_parameter(variant.name()),
                &variant,
                |b, &variant| {
                    b.iter(|| run_topk(Algo::Lemp(variant), &w, 10));
                },
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_variants_topk
}
criterion_main!(benches);
