//! **Table 4 / Fig. 6b** as a criterion bench: Row-Top-k across the paper's
//! algorithm lineup on the transposed IE datasets and Netflix, at k = 1 (the
//! Fig. 6b headline) and k = 10.
//!
//! Shape target (paper): LEMP wins, Tree second, TA collapses on dense
//! low-skew data, D-Tree's group bounds are loose.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::runners::{run_topk, Algo};
use lemp_bench::workload::Workload;
use lemp_data::datasets::Dataset;

fn bench_topk(c: &mut Criterion) {
    for (ds, scale) in
        [(Dataset::IeSvdT, 0.002), (Dataset::IeNmfT, 0.002), (Dataset::Netflix, 0.02)]
    {
        let w = Workload::new(ds, scale, 42);
        for k in [1usize, 10] {
            let mut group = c.benchmark_group(format!("table4/{}/k{}", w.name, k));
            for algo in Algo::paper_lineup() {
                group.bench_with_input(
                    BenchmarkId::from_parameter(algo.name()),
                    &algo,
                    |b, &algo| {
                        b.iter(|| run_topk(algo, &w, k));
                    },
                );
            }
            group.finish();
        }
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_topk
}
criterion_main!(benches);
