//! Approximate MIPS methods (the paper's related work \[15, 16, 17\])
//! against the exact LEMP engine: retrieval time at practical knob
//! settings. Recall at the same settings is reported by the
//! `repro-approx` binary; this bench captures the time side only.
//!
//! Shape targets: SRP Hamming ranking and the PCA tree beat the exact
//! engine per query once their budgets are small fractions of `n`; the
//! centroid method amortizes the exact engine over queries-per-cluster and
//! wins when queries are plentiful relative to clusters.

use criterion::{criterion_group, criterion_main, Criterion};
use lemp_approx::{centroid_row_top_k, CentroidConfig, PcaTree, PcaTreeConfig, SrpConfig, SrpLsh};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

const K: usize = 10;

fn bench_approx(c: &mut Criterion) {
    let w = Workload::new(Dataset::Netflix, 0.003, 42);
    let mut group = c.benchmark_group(format!("approx_topk/{}", w.name));

    group.bench_function("exact-LI", |b| {
        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let _ = engine.row_top_k(&w.queries, K);
        b.iter(|| engine.row_top_k(&w.queries, K));
    });

    group.bench_function("srp-budget-16k", |b| {
        let index = SrpLsh::build(&w.probes, &SrpConfig::default()).expect("valid probes");
        b.iter(|| index.row_top_k(&w.queries, K, 16 * K));
    });

    group.bench_function("pca-quarter-leaves", |b| {
        let tree = PcaTree::build(&w.probes, &PcaTreeConfig::default()).expect("valid probes");
        let budget = (tree.leaves() / 4).max(1);
        b.iter(|| tree.row_top_k(&w.queries, K, budget));
    });

    group.bench_function("centroid-64x4", |b| {
        let cfg = CentroidConfig { clusters: 64, expand: 4, ..Default::default() };
        b.iter(|| centroid_row_top_k(&w.queries, &w.probes, K, &cfg).expect("valid config"));
    });

    group.finish();
}

fn bench_approx_build(c: &mut Criterion) {
    let w = Workload::new(Dataset::Netflix, 0.003, 42);
    let mut group = c.benchmark_group(format!("approx_build/{}", w.name));
    group.bench_function("srp", |b| {
        b.iter(|| SrpLsh::build(&w.probes, &SrpConfig::default()).expect("valid probes"));
    });
    group.bench_function("pca-tree", |b| {
        b.iter(|| PcaTree::build(&w.probes, &PcaTreeConfig::default()).expect("valid probes"));
    });
    group.bench_function("exact-lemp-bucketize", |b| {
        b.iter(|| Lemp::builder().build(&w.probes));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_approx, bench_approx_build
}
criterion_main!(benches);
