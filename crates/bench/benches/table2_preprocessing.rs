//! **Table 2** as a criterion bench: preprocessing (index construction)
//! time per method on scaled datasets.
//!
//! Shape target (paper): trees cost the most, TA is a cheap per-coordinate
//! sort, LEMP's bucketization + lazy indexing is cheapest on skewed data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_baselines::{CoverTree, DualTree, TaIndex};
use lemp_bench::workload::Workload;
use lemp_core::{BucketPolicy, ProbeBuckets};
use lemp_data::datasets::Dataset;
use std::hint::black_box;

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_preprocessing");
    for ds in [Dataset::IeSvd, Dataset::Netflix] {
        let w = Workload::new(ds, 0.002, 42);
        group.bench_with_input(BenchmarkId::new("LEMP_buckets", w.name.clone()), &w, |b, w| {
            b.iter(|| ProbeBuckets::build(black_box(&w.probes), &BucketPolicy::default()));
        });
        group.bench_with_input(BenchmarkId::new("TA_lists", w.name.clone()), &w, |b, w| {
            b.iter(|| TaIndex::build(black_box(&w.probes)));
        });
        group.bench_with_input(BenchmarkId::new("Tree", w.name.clone()), &w, |b, w| {
            b.iter(|| CoverTree::build(black_box(&w.probes), 1.3));
        });
        group.bench_with_input(BenchmarkId::new("D-Tree", w.name.clone()), &w, |b, w| {
            b.iter(|| DualTree::build(black_box(&w.queries), black_box(&w.probes), 1.3));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_preprocessing
}
criterion_main!(benches);
