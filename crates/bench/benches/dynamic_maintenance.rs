//! Dynamic maintenance costs: edit throughput and the query-time price of
//! incremental bucketization versus a full rebuild.
//!
//! Shape targets: single edits are microseconds (binary search + row
//! splice + index drop) while a rebuild is O(n log n); querying after
//! heavy churn is mildly slower than after a rebuild (fragmented buckets),
//! which `rebuild()` recovers.

use criterion::{criterion_group, criterion_main, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::dynamic::DynamicLemp;
use lemp_core::{BucketPolicy, RunConfig};
use lemp_data::datasets::Dataset;

fn churn(engine: &mut DynamicLemp, rounds: usize) {
    let dim = engine.dim();
    for i in 0..rounds {
        let scale = 10f64.powf((i % 5) as f64 / 2.0 - 1.0);
        let v: Vec<f64> = (0..dim).map(|f| scale * ((i * 7 + f) as f64 * 0.013 - 1.0)).collect();
        let id = engine.insert(&v).expect("valid vector");
        if i % 2 == 1 {
            engine.remove(id / 2);
        }
    }
}

fn bench_edits(c: &mut Criterion) {
    let w = Workload::new(Dataset::Netflix, 0.003, 42);
    let mut group = c.benchmark_group(format!("dynamic_edits/{}", w.name));

    group.bench_function("insert+remove-pair", |b| {
        let mut engine = DynamicLemp::new(&w.probes, BucketPolicy::default(), RunConfig::default());
        let v = vec![0.25; engine.dim()];
        b.iter(|| {
            let id = engine.insert(&v).expect("valid vector");
            engine.remove(id);
        });
    });

    group.bench_function("full-rebuild", |b| {
        let mut engine = DynamicLemp::new(&w.probes, BucketPolicy::default(), RunConfig::default());
        churn(&mut engine, 200);
        b.iter(|| engine.rebuild());
    });

    group.finish();
}

fn bench_query_after_churn(c: &mut Criterion) {
    let w = Workload::new(Dataset::Netflix, 0.003, 42);
    let mut group = c.benchmark_group(format!("dynamic_query/{}", w.name));

    group.bench_function("fragmented", |b| {
        let mut engine = DynamicLemp::new(&w.probes, BucketPolicy::default(), RunConfig::default());
        churn(&mut engine, 500);
        let _ = engine.row_top_k(&w.queries, 10); // warm indexes
        b.iter(|| engine.row_top_k(&w.queries, 10));
    });

    group.bench_function("compacted", |b| {
        let mut engine = DynamicLemp::new(&w.probes, BucketPolicy::default(), RunConfig::default());
        churn(&mut engine, 500);
        engine.rebuild();
        let _ = engine.row_top_k(&w.queries, 10);
        b.iter(|| engine.row_top_k(&w.queries, 10));
    });

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_edits, bench_query_after_churn
}
criterion_main!(benches);
