//! **Table 5 / Fig. 7a–b** as a criterion bench: the nine LEMP bucket-method
//! variants on Above-θ (IE-SVD shape), at a mid recall level.
//!
//! Shape target (paper): LEMP-L strong at low recall on high-skew data,
//! LEMP-I/LI best overall, L2AP slower than INCR despite pruning hardest,
//! BLSH ≈ LEMP-L plus hashing overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::runners::{run_above, Algo};
use lemp_bench::workload::Workload;
use lemp_core::LempVariant;
use lemp_data::datasets::Dataset;

fn bench_variants_above(c: &mut Criterion) {
    for ds in [Dataset::IeSvd, Dataset::IeNmf] {
        let w = Workload::new(ds, 0.002, 42);
        let levels = w.recall_levels(43);
        let level = levels[levels.len() / 2].clone();
        let mut group = c.benchmark_group(format!("table5/{}/{}", w.name, level.label));
        for variant in LempVariant::all() {
            group.bench_with_input(
                BenchmarkId::from_parameter(variant.name()),
                &variant,
                |b, &variant| {
                    b.iter(|| run_above(Algo::Lemp(variant), &w, level.theta));
                },
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_variants_above
}
criterion_main!(benches);
