//! **Sec. 6.2 "caching effects"** as a criterion bench: cache-aware vs
//! cache-oblivious bucketization on a low-length-skew (KDD-like) workload.
//!
//! Shape target (paper): the cache-aware version creates many more buckets
//! and is clearly faster on low-skew data; differences are marginal on
//! high-skew data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::{BucketPolicy, Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn bench_cache_policy(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::Kdd, 0.002), (Dataset::IeSvdT, 0.002)] {
        let w = Workload::new(ds, scale, 42);
        let mut group = c.benchmark_group(format!("ablation_cache/{}", w.name));
        for (label, cache_bytes) in
            [("aware", BucketPolicy::default().cache_bytes), ("oblivious", 0)]
        {
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &cache_bytes,
                |b, &cache_bytes| {
                    b.iter(|| {
                        let policy = BucketPolicy { cache_bytes, ..Default::default() };
                        let mut engine = Lemp::builder()
                            .variant(LempVariant::LI)
                            .policy(policy)
                            .build(&w.probes);
                        engine.row_top_k(&w.queries, 10)
                    });
                },
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache_policy
}
criterion_main!(benches);
