//! **Sec. 4.4 outlook** as a criterion bench: sample-based tuning vs
//! online bandit selection ("some form of reinforcement learning").
//!
//! Shape target: all selection strategies produce identical (exact)
//! results and land in the same time regime; the tuner pays its cost up
//! front, the bandits pay per-pair timing overhead plus warm-up
//! exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemp_bench::workload::Workload;
use lemp_core::{AdaptiveConfig, BanditPolicy, Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn bench_adaptive(c: &mut Criterion) {
    for (ds, scale) in [(Dataset::IeSvdT, 0.003), (Dataset::Netflix, 0.003)] {
        let w = Workload::new(ds, scale, 42);
        let k = 10;
        let mut group = c.benchmark_group(format!("adaptive_selection/{}", w.name));
        group.bench_function(BenchmarkId::from_parameter("tuned-LI"), |b| {
            b.iter(|| {
                let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
                engine.row_top_k(&w.queries, k)
            });
        });
        for (label, policy) in [
            ("ucb1", BanditPolicy::Ucb1 { c: 1.0 }),
            ("eps-greedy", BanditPolicy::EpsilonGreedy { epsilon: 0.1, seed: 7 }),
        ] {
            let acfg = AdaptiveConfig { policy, ..Default::default() };
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| {
                    let mut engine = Lemp::new(&w.probes);
                    engine.row_top_k_adaptive(&w.queries, k, &acfg)
                });
            });
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_adaptive
}
criterion_main!(benches);
