//! End-to-end tests: boot the server on an ephemeral port, drive it over
//! real sockets, and check every answer against the naive baseline.

use std::time::Duration;

use lemp_baselines::types::topk_equivalent;
use lemp_baselines::Naive;
use lemp_core::shard::ShardPolicy;
use lemp_core::{BucketPolicy, DynamicLemp, RunConfig, ShardedLemp, WarmGoal};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::{ScoredItem, VectorStore};
use lemp_serve::client;
use lemp_serve::json::{obj, Json};
use lemp_serve::{ServeConfig, Server, ServerHandle};

const DIM: usize = 8;

fn fixture(n: usize, seed: u64) -> VectorStore {
    GeneratorConfig::gaussian(n, DIM, 1.0).generate(seed)
}

fn boot(probes: &VectorStore, cfg: ServeConfig) -> ServerHandle {
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let mut engine = DynamicLemp::new(probes, policy, config);
    let sample = fixture(16, 777);
    engine.warm(&sample, WarmGoal::TopK(5));
    let server = Server::bind("127.0.0.1:0", engine, cfg).expect("bind ephemeral port");
    server.start().expect("start server")
}

fn queries_json(store: &VectorStore, lo: usize, hi: usize) -> Json {
    Json::Arr(
        (lo..hi)
            .map(|i| Json::Arr(store.vector(i).iter().map(|&x| Json::Num(x)).collect()))
            .collect(),
    )
}

fn parse_lists(body: &Json) -> Vec<Vec<ScoredItem>> {
    body.get("lists")
        .and_then(Json::as_arr)
        .expect("lists")
        .iter()
        .map(|list| {
            list.as_arr()
                .expect("list")
                .iter()
                .map(|item| ScoredItem {
                    id: item.get("id").and_then(Json::as_u64).expect("id") as usize,
                    score: item.get("score").and_then(Json::as_f64).expect("score"),
                })
                .collect()
        })
        .collect()
}

#[test]
fn concurrent_topk_matches_naive_baseline() {
    let probes = fixture(300, 1);
    let queries = fixture(48, 2);
    let k = 5;
    let (expect, _) = Naive.row_top_k(&queries, &probes, k);

    let handle = boot(&probes, ServeConfig::default());
    let addr = handle.addr();

    // ≥ 4 client threads, each owning a disjoint slice of the query set,
    // hammering POST /top-k concurrently.
    const THREADS: usize = 6;
    let per = queries.len() / THREADS;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (queries, expect) = (&queries, &expect);
            scope.spawn(move || {
                let lo = t * per;
                let hi = if t == THREADS - 1 { queries.len() } else { lo + per };
                // Several rounds so requests interleave heavily.
                for _ in 0..3 {
                    for chunk_lo in (lo..hi).step_by(4) {
                        let chunk_hi = (chunk_lo + 4).min(hi);
                        let body = obj(vec![
                            ("queries", queries_json(queries, chunk_lo, chunk_hi)),
                            ("k", Json::Num(k as f64)),
                        ]);
                        let (status, reply) = client::post(addr, "/top-k", &body).expect("request");
                        assert_eq!(status, 200, "{reply:?}");
                        let lists = parse_lists(&reply);
                        assert!(
                            topk_equivalent(&lists, &expect[chunk_lo..chunk_hi].to_vec(), 1e-9),
                            "rows {chunk_lo}..{chunk_hi} diverge from naive"
                        );
                    }
                }
            });
        }
    });

    // /stats must report the request and batch counters.
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let counters = stats.get("counters").expect("counters");
    let topk = counters.get("topk_requests").and_then(Json::as_u64).unwrap();
    let batches = counters.get("batches").and_then(Json::as_u64).unwrap();
    assert!(topk >= (THREADS * 3) as u64, "served {topk} top-k requests");
    assert!(batches >= 1 && batches <= counters.get("requests").and_then(Json::as_u64).unwrap());
    assert!(counters.get("queries").and_then(Json::as_u64).unwrap() >= queries.len() as u64);
    handle.shutdown();
}

#[test]
fn quantized_server_answers_exactly_and_reports_memory() {
    let probes = fixture(300, 21);
    let queries = fixture(24, 22);
    let k = 5;
    let (expect, _) = Naive.row_top_k(&queries, &probes, k);

    let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
    let config = RunConfig { sample_size: 8, quantize_bits: 8, ..Default::default() };
    let mut engine = DynamicLemp::new(&probes, policy, config);
    engine.warm(&fixture(16, 777), WarmGoal::TopK(k));
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    // Quantized-verified answers stay exact over the wire.
    let body = obj(vec![
        ("queries", queries_json(&queries, 0, queries.len())),
        ("k", Json::Num(k as f64)),
    ]);
    let (status, reply) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    assert!(topk_equivalent(&parse_lists(&reply), &expect, 1e-9));

    // /stats pins engine.memory: full-precision vs quantized residency,
    // totalled and per shard.
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let memory = stats.get("engine").and_then(|e| e.get("memory")).expect("engine.memory");
    let full = memory.get("full_bytes").and_then(Json::as_u64).unwrap();
    let quant = memory.get("quantized_bytes").and_then(Json::as_u64).unwrap();
    assert!(full >= (probes.len() * DIM * 8) as u64, "full residency covers every direction");
    assert!(quant > 0, "a warm quantized engine reports code residency");
    assert!(quant < full, "8-bit codes must undercut f64 directions");
    let shards = memory.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].get("full_bytes").and_then(Json::as_u64), Some(full));
    assert_eq!(shards[0].get("quantized_bytes").and_then(Json::as_u64), Some(quant));
    handle.shutdown();

    // An unquantized server reports zero quantized residency.
    let handle = boot(&probes, ServeConfig::default());
    let (_, stats) = client::get(handle.addr(), "/stats").unwrap();
    let memory = stats.get("engine").and_then(|e| e.get("memory")).expect("engine.memory");
    assert_eq!(memory.get("quantized_bytes").and_then(Json::as_u64), Some(0));
    handle.shutdown();
}

#[test]
fn sharded_server_answers_exactly_and_reports_shard_counters() {
    let probes = fixture(360, 11);
    let queries = fixture(40, 12);
    let k = 5;
    let theta = 1.0;
    let (expect_topk, _) = Naive.row_top_k(&queries, &probes, k);
    let (expect_above, _) = Naive.above_theta(&queries, &probes, theta);
    let mut expect_above: Vec<(u32, u32)> =
        expect_above.iter().map(|e| (e.query, e.probe)).collect();
    expect_above.sort_unstable();
    assert!(!expect_above.is_empty(), "fixture must produce entries");

    const SHARDS: usize = 3;
    let mut engine = ShardedLemp::builder()
        .shards(SHARDS)
        .policy(ShardPolicy::LengthBanded)
        .sample_size(8)
        .threads(2)
        .build(&probes);
    engine.warm(&fixture(16, 777), WarmGoal::TopK(k));
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    // Concurrent top-k clients over the sharded engine.
    const THREADS: usize = 4;
    let per = queries.len() / THREADS;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (queries, expect_topk) = (&queries, &expect_topk);
            scope.spawn(move || {
                let lo = t * per;
                let hi = if t == THREADS - 1 { queries.len() } else { lo + per };
                let body = obj(vec![
                    ("queries", queries_json(queries, lo, hi)),
                    ("k", Json::Num(k as f64)),
                ]);
                let (status, reply) = client::post(addr, "/top-k", &body).expect("request");
                assert_eq!(status, 200, "{reply:?}");
                let lists = parse_lists(&reply);
                assert!(
                    topk_equivalent(&lists, &expect_topk[lo..hi].to_vec(), 1e-9),
                    "rows {lo}..{hi} diverge from naive on the sharded server"
                );
            });
        }
    });

    // Above-θ through the same endpoint and wire shape.
    let body = obj(vec![
        ("queries", queries_json(&queries, 0, queries.len())),
        ("theta", Json::Num(theta)),
    ]);
    let (status, reply) = client::post(addr, "/above-theta", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let mut got: Vec<(u32, u32)> = reply
        .get("entries")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|e| {
            (
                e.get("query").and_then(Json::as_u64).unwrap() as u32,
                e.get("probe").and_then(Json::as_u64).unwrap() as u32,
            )
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect_above);

    // /stats exposes the shard counters: shard count and the shard map.
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let engine_info = stats.get("engine").expect("engine info");
    assert_eq!(engine_info.get("shards").and_then(Json::as_u64), Some(SHARDS as u64));
    let shard_probes = engine_info.get("shard_probes").and_then(Json::as_arr).unwrap();
    assert_eq!(shard_probes.len(), SHARDS);
    let total: u64 = shard_probes.iter().map(|n| n.as_u64().unwrap()).sum();
    assert_eq!(total, probes.len() as u64, "shard map must cover every probe");
    assert_eq!(engine_info.get("probes").and_then(Json::as_u64), Some(probes.len() as u64));

    // Probe edits are routed to the owning shard; the response names it,
    // and `/stats.shard_probes` reflects the edit immediately (it is read
    // from the live engine, not a boot-time snapshot).
    let edit = obj(vec![(
        "insert",
        Json::Arr(vec![Json::Arr((0..DIM).map(|_| Json::Num(1.0)).collect())]),
    )]);
    let (status, reply) = client::post(addr, "/probes", &edit).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let id = reply.get("inserted").and_then(Json::as_arr).unwrap()[0].as_u64().unwrap();
    assert_eq!(id, probes.len() as u64, "global watermark allocates the next id");
    let routed = reply.get("shards").and_then(Json::as_arr).unwrap()[0].as_u64().unwrap();
    assert!((routed as usize) < SHARDS);
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let engine_info = stats.get("engine").expect("engine info");
    let shard_probes = engine_info.get("shard_probes").and_then(Json::as_arr).unwrap();
    let total: u64 = shard_probes.iter().map(|n| n.as_u64().unwrap()).sum();
    assert_eq!(total, probes.len() as u64 + 1, "shard map must be live after the edit");
    // Queries keep answering exactly over the edited probe set.
    let body = obj(vec![("queries", queries_json(&queries, 0, 4)), ("k", Json::Num(k as f64))]);
    let (status, _) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200);

    // /healthz is unchanged.
    let (status, health) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("warm"), Some(&Json::Bool(true)));
    handle.shutdown();
}

#[test]
fn above_theta_endpoint_matches_naive() {
    let probes = fixture(250, 3);
    let queries = fixture(30, 4);
    let theta = 1.0;
    let (expect_entries, _) = Naive.above_theta(&queries, &probes, theta);
    let mut expect: Vec<(u32, u32)> = expect_entries.iter().map(|e| (e.query, e.probe)).collect();
    expect.sort_unstable();
    assert!(!expect.is_empty(), "fixture must produce entries");

    let handle = boot(&probes, ServeConfig::default());
    let body = obj(vec![
        ("queries", queries_json(&queries, 0, queries.len())),
        ("theta", Json::Num(theta)),
    ]);
    let (status, reply) = client::post(handle.addr(), "/above-theta", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let mut got: Vec<(u32, u32)> = reply
        .get("entries")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|e| {
            let q = e.get("query").and_then(Json::as_u64).unwrap() as u32;
            let p = e.get("probe").and_then(Json::as_u64).unwrap() as u32;
            let v = e.get("value").and_then(Json::as_f64).unwrap();
            let real = queries.dot_between(q as usize, &probes, p as usize);
            assert!((v - real).abs() <= 1e-9 * real.abs().max(1.0));
            (q, p)
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect);
    assert_eq!(reply.get("count").and_then(Json::as_u64).unwrap() as usize, expect.len());
    handle.shutdown();
}

#[test]
fn probe_edits_change_subsequent_answers() {
    let probes = fixture(120, 5);
    let handle = boot(&probes, ServeConfig::default());
    let addr = handle.addr();

    // Insert a probe that dominates a known query direction.
    let spike: Vec<f64> = (0..DIM).map(|i| if i == 0 { 100.0 } else { 0.0 }).collect();
    let body = obj(vec![(
        "insert",
        Json::Arr(vec![Json::Arr(spike.iter().map(|&x| Json::Num(x)).collect())]),
    )]);
    let (status, reply) = client::post(addr, "/probes", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let inserted = reply.get("inserted").and_then(Json::as_arr).unwrap();
    assert_eq!(inserted.len(), 1);
    let new_id = inserted[0].as_u64().unwrap();
    assert_eq!(new_id, 120);
    assert_eq!(reply.get("probes").and_then(Json::as_u64), Some(121));

    // The inserted probe must now win top-1 for an aligned query.
    let probe_query = obj(vec![
        (
            "queries",
            Json::Arr(vec![Json::Arr(
                (0..DIM).map(|i| Json::Num(if i == 0 { 1.0 } else { 0.0 })).collect(),
            )]),
        ),
        ("k", Json::Num(1.0)),
    ]);
    let (status, reply) = client::post(addr, "/top-k", &probe_query).unwrap();
    assert_eq!(status, 200);
    let lists = parse_lists(&reply);
    assert_eq!(lists[0][0].id as u64, new_id);
    assert!((lists[0][0].score - 100.0).abs() < 1e-9);

    // Remove it again: a repeat answer must not mention it; removing twice
    // reports false.
    let body = obj(vec![("remove", Json::Arr(vec![Json::Num(new_id as f64)]))]);
    let (status, reply) = client::post(addr, "/probes", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(reply.get("removed").and_then(Json::as_arr).unwrap()[0], Json::Bool(true));
    let (_, reply) = client::post(addr, "/probes", &body).unwrap();
    assert_eq!(reply.get("removed").and_then(Json::as_arr).unwrap()[0], Json::Bool(false));
    let (_, reply) = client::post(addr, "/top-k", &probe_query).unwrap();
    let lists = parse_lists(&reply);
    assert_ne!(lists[0][0].id as u64, new_id);

    // healthz reflects the live count.
    let (status, health) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(health.get("probes").and_then(Json::as_u64), Some(120));
    assert_eq!(health.get("dim").and_then(Json::as_u64), Some(DIM as u64));
    assert_eq!(health.get("warm"), Some(&Json::Bool(true)));
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_503() {
    // No workers: nothing drains the accept queue, so connection number
    // cap+1 must be shed with 503 instead of waiting forever.
    let probes = fixture(60, 6);
    let cfg = ServeConfig { workers: 0, queue_cap: 2, ..Default::default() };
    let handle = boot(&probes, cfg);
    let addr = handle.addr();

    // Fill the queue with idle connections (accepted, never answered).
    let _idle1 = std::net::TcpStream::connect(addr).unwrap();
    let _idle2 = std::net::TcpStream::connect(addr).unwrap();
    // Shedding is immediate, so a short client timeout suffices.
    let mut shed_seen = false;
    for _ in 0..20 {
        match client::request(addr, "GET", "/healthz", None, Some(Duration::from_secs(2))) {
            Ok((503, body)) => {
                assert_eq!(body.get("error").and_then(Json::as_str), Some("overloaded"));
                shed_seen = true;
                break;
            }
            Ok((status, body)) => panic!("expected 503, got {status} {body:?}"),
            // The acceptor may not have enqueued the idle sockets yet.
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    assert!(shed_seen, "overflow connection was never shed");
    handle.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_a_hang() {
    let probes = fixture(80, 7);
    let handle = boot(&probes, ServeConfig::default());
    let addr = handle.addr();

    let cases: Vec<(&str, &str, Option<Json>, u16)> = vec![
        ("GET", "/nope", None, 404),
        ("DELETE", "/top-k", None, 405),
        ("POST", "/top-k", Some(Json::Str("not an object".into())), 400),
        // dimensionality mismatch
        (
            "POST",
            "/top-k",
            Some(obj(vec![
                ("queries", Json::Arr(vec![Json::Arr(vec![Json::Num(1.0)])])),
                ("k", Json::Num(1.0)),
            ])),
            400,
        ),
        // missing parameter
        ("POST", "/above-theta", Some(obj(vec![("queries", Json::Arr(vec![]))])), 400),
        // bad probe id type
        ("POST", "/probes", Some(obj(vec![("remove", Json::Arr(vec![Json::Num(-3.0)]))])), 400),
    ];
    for (method, path, body, want) in cases {
        let (status, reply) =
            client::request(addr, method, path, body.as_ref(), Some(Duration::from_secs(5)))
                .unwrap();
        assert_eq!(status, want, "{method} {path}: {reply:?}");
        assert!(reply.get("error").is_some(), "{method} {path} must explain itself");
    }

    // Raw garbage on the socket also gets a clean 400.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");

    // The server is still healthy afterwards.
    let (status, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let (_, stats) = client::get(addr, "/stats").unwrap();
    let errors =
        stats.get("counters").unwrap().get("client_errors").and_then(Json::as_u64).unwrap();
    assert!(errors >= 6, "client errors counted: {errors}");
    handle.shutdown();
}

#[test]
fn empty_query_set_answers_immediately() {
    let probes = fixture(50, 8);
    let handle = boot(&probes, ServeConfig::default());
    let body = obj(vec![("queries", Json::Arr(vec![])), ("k", Json::Num(3.0))]);
    let (status, reply) = client::post(handle.addr(), "/top-k", &body).unwrap();
    assert_eq!(status, 200);
    assert!(reply.get("lists").and_then(Json::as_arr).unwrap().is_empty());
    handle.shutdown();
}

#[test]
fn single_worker_micro_batches_concurrent_requests() {
    // One worker + a burst of parallel requests: the worker's wakeup must
    // fold queued compatible requests into shared engine calls. The exact
    // fold count is timing-dependent, so retry bursts until batching is
    // observed (correctness of batched answers is asserted every time).
    let probes = fixture(200, 9);
    let queries = fixture(32, 10);
    let k = 3;
    let (expect, _) = Naive.row_top_k(&queries, &probes, k);
    let cfg = ServeConfig { workers: 1, queue_cap: 64, batch_max: 8, ..Default::default() };
    let handle = boot(&probes, cfg);
    let addr = handle.addr();

    let mut batched = 0u64;
    for _attempt in 0..25 {
        std::thread::scope(|scope| {
            for q in 0..queries.len() {
                let (queries, expect) = (&queries, &expect);
                scope.spawn(move || {
                    let body = obj(vec![
                        ("queries", queries_json(queries, q, q + 1)),
                        ("k", Json::Num(k as f64)),
                    ]);
                    let (status, reply) = client::post(addr, "/top-k", &body).unwrap();
                    assert_eq!(status, 200);
                    let lists = parse_lists(&reply);
                    assert!(
                        topk_equivalent(&lists, &expect[q..q + 1].to_vec(), 1e-9),
                        "query {q} diverges from naive under batching"
                    );
                });
            }
        });
        let (_, stats) = client::get(addr, "/stats").unwrap();
        batched =
            stats.get("counters").unwrap().get("batched_requests").and_then(Json::as_u64).unwrap();
        if batched > 0 {
            break;
        }
    }
    assert!(batched > 0, "micro-batching never engaged across 25 bursts");
    handle.shutdown();
}

#[test]
fn sharded_durable_server_routes_edits_and_recovers() {
    // `shards=` and `durable=` compose: a server over a
    // `ShardedDurableEngine` routes every wire edit to the owning shard's
    // log-then-apply path, reports per-shard WAL counters, and a recovery
    // of the store directory reassembles the exact post-edit probe set.
    use lemp_store::{recover_sharded, ShardedDurableEngine, StoreOptions};

    let dir = std::env::temp_dir().join(format!("lemp-e2e-shdur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let probes = fixture(120, 20);
    const SHARDS: usize = 3;
    let mut engine = ShardedLemp::builder()
        .shards(SHARDS)
        .policy(ShardPolicy::RoundRobin)
        .sample_size(8)
        .build(&probes);
    engine.warm(&fixture(16, 777), WarmGoal::TopK(3));
    let durable = ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
    let server = Server::bind("127.0.0.1:0", durable, ServeConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    // Insert a batch and remove two seeds; the reply names the owning
    // shard of every insert, and round-robin routing makes it predictable.
    let extra = fixture(6, 22);
    let rows: Vec<Json> = (0..extra.len())
        .map(|i| queries_json(&extra, i, i + 1).as_arr().unwrap()[0].clone())
        .collect();
    let body = obj(vec![
        ("insert", Json::Arr(rows)),
        ("remove", Json::Arr(vec![Json::Num(3.0), Json::Num(77.0)])),
    ]);
    let (status, reply) = client::post(addr, "/probes", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let inserted = reply.get("inserted").and_then(Json::as_arr).unwrap();
    let shards = reply.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(inserted.len(), 6);
    assert_eq!(shards.len(), 6);
    for (id, shard) in inserted.iter().zip(shards) {
        let (id, shard) = (id.as_u64().unwrap(), shard.as_u64().unwrap());
        assert_eq!(shard, id % SHARDS as u64, "round-robin owner of id {id}");
    }
    assert_eq!(reply.get("probes").and_then(Json::as_u64), Some(124));
    let removed = reply.get("removed").and_then(Json::as_arr).unwrap();
    assert_eq!(removed, &[Json::Bool(true), Json::Bool(true)]);

    // /stats: live per-shard probe counts, the aggregate WAL counters, and
    // the per-shard breakdown (8 records total, all durable under Always).
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let engine_info = stats.get("engine").expect("engine info");
    assert_eq!(engine_info.get("durable"), Some(&Json::Bool(true)));
    assert_eq!(engine_info.get("shards").and_then(Json::as_u64), Some(SHARDS as u64));
    let shard_probes = engine_info.get("shard_probes").and_then(Json::as_arr).unwrap();
    let total: u64 = shard_probes.iter().map(|n| n.as_u64().unwrap()).sum();
    assert_eq!(total, 124, "shard map is live after the edits");
    let wal = stats.get("wal").expect("aggregate wal counters");
    assert_eq!(wal.get("records_appended").and_then(Json::as_u64), Some(8));
    assert_eq!(wal.get("records_durable").and_then(Json::as_u64), Some(8));
    let per_shard = stats.get("wal_shards").and_then(Json::as_arr).unwrap();
    assert_eq!(per_shard.len(), SHARDS);
    let split: u64 =
        per_shard.iter().map(|w| w.get("records_appended").and_then(Json::as_u64).unwrap()).sum();
    assert_eq!(split, 8, "per-shard counters partition the aggregate");

    // Queries still answer, and answers reflect the edits.
    let body = obj(vec![("queries", queries_json(&probes, 0, 2)), ("k", Json::Num(3.0))]);
    let (status, _) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200);

    // "Crash" the server; recovery reassembles the full sharded engine.
    handle.shutdown();
    let (recovered, report) = recover_sharded(&dir).unwrap();
    assert_eq!(report.shards.len(), SHARDS);
    assert_eq!(recovered.len(), 124);
    assert!(!recovered.contains(3) && !recovered.contains(77));
    for id in inserted {
        assert!(recovered.contains(id.as_u64().unwrap() as u32));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_k_is_clamped_not_fatal() {
    // k far beyond the probe count (large enough to overflow a heap
    // allocation without the engine-side clamp) returns every probe; the
    // same clamped semantics hold for k = 0. This is pinned here because
    // the server no longer clamps — the engines do, uniformly.
    let probes = fixture(60, 21);
    let queries = fixture(4, 22);
    let handle = boot(&probes, ServeConfig::default());
    let addr = handle.addr();

    let body = obj(vec![("queries", queries_json(&queries, 0, 4)), ("k", Json::Num(1e15))]);
    let (status, reply) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let lists = parse_lists(&reply);
    assert!(lists.iter().all(|l| l.len() == probes.len()), "k > n must return every probe");

    let body = obj(vec![("queries", queries_json(&queries, 0, 4)), ("k", Json::Num(0.0))]);
    let (status, reply) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let lists = parse_lists(&reply);
    assert!(lists.iter().all(Vec::is_empty), "k = 0 must return empty lists");
    handle.shutdown();
}

#[test]
fn durable_server_survives_a_crash_and_recovery_matches() {
    use lemp_store::{recover, DurableEngine, StoreOptions};

    let dir = std::env::temp_dir().join(format!("lemp-e2e-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let probes = fixture(120, 21);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let engine = DynamicLemp::new(&probes, policy, config);
    let durable = DurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
    let server =
        Server::bind("127.0.0.1:0", durable, ServeConfig::default()).expect("bind ephemeral port");
    let handle = server.start().expect("start server");
    let addr = handle.addr();

    // Edit over the wire: insert a batch (one dominating spike among them)
    // and remove a couple of seed probes.
    let spike: Vec<f64> = (0..DIM).map(|i| if i == 0 { 100.0 } else { 0.0 }).collect();
    let extra = fixture(5, 22);
    let mut rows: Vec<Json> = (0..extra.len())
        .map(|i| queries_json(&extra, i, i + 1).as_arr().unwrap()[0].clone())
        .collect();
    rows.push(Json::Arr(spike.iter().map(|&x| Json::Num(x)).collect()));
    let body = obj(vec![
        ("insert", Json::Arr(rows)),
        ("remove", Json::Arr(vec![Json::Num(3.0), Json::Num(77.0)])),
    ]);
    let (status, reply) = client::post(addr, "/probes", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    assert_eq!(reply.get("inserted").and_then(Json::as_arr).unwrap().len(), 6);
    let spike_id = reply.get("inserted").and_then(Json::as_arr).unwrap()[5].as_u64().unwrap();
    assert_eq!(reply.get("probes").and_then(Json::as_u64), Some(124));

    // Query answers reflect the edits while the server is up.
    let probe_query = obj(vec![
        (
            "queries",
            Json::Arr(vec![Json::Arr(
                (0..DIM).map(|i| Json::Num(if i == 0 { 1.0 } else { 0.0 })).collect(),
            )]),
        ),
        ("k", Json::Num(1.0)),
    ]);
    let (_, reply) = client::post(addr, "/top-k", &probe_query).unwrap();
    assert_eq!(parse_lists(&reply)[0][0].id as u64, spike_id);

    // /stats carries the WAL counters: 8 edits logged, all durable under
    // the default (Always) sync policy.
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        stats.get("engine").and_then(|e| e.get("durable")),
        Some(&Json::Bool(true)),
        "{stats:?}"
    );
    let wal = stats.get("wal").expect("durable /stats exposes wal counters");
    assert_eq!(wal.get("records_appended").and_then(Json::as_u64), Some(8));
    assert_eq!(wal.get("records_durable").and_then(Json::as_u64), Some(8));
    assert!(wal.get("fsyncs").and_then(Json::as_u64).unwrap() >= 8);
    assert!(wal.get("bytes_appended").and_then(Json::as_u64).unwrap() > 0);

    // "Crash": tear the server down without any graceful engine save.
    handle.shutdown();

    // Recovery rebuilds the exact probe set and answers match Naive.
    let (recovered, report) = recover(&dir).unwrap();
    assert_eq!(report.records_replayed, 8);
    assert_eq!(recovered.len(), 124);
    assert!(recovered.contains(spike_id as u32));
    assert!(!recovered.contains(3) && !recovered.contains(77));
    let (ids, live) = recovered.live_vectors();
    let queries = fixture(10, 23);
    let k = 5;
    let (naive, _) = Naive.row_top_k(&queries, &live, k);
    let mut warm = recovered;
    let sample = fixture(16, 777);
    warm.warm(&sample, WarmGoal::TopK(k));
    let mut scratch = warm.make_scratch();
    let out = warm.row_top_k_shared(&queries, k, &mut scratch);
    // Map naive's row indices to stable ids before comparing.
    let mapped: Vec<Vec<ScoredItem>> = naive
        .iter()
        .map(|list| {
            list.iter().map(|it| ScoredItem { id: ids[it.id] as usize, score: it.score }).collect()
        })
        .collect();
    assert!(topk_equivalent(&out.lists, &mapped, 1e-9), "recovered answers diverge from Naive");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replication_follower_tails_promotes_and_diverges_never() {
    // Full leader/follower lifecycle over real sockets: bootstrap from
    // the wire snapshot, tail to lag 0, identical answers on both roles,
    // 409 while read-only, promote, accept a local edit, and a recovery
    // of the follower's store that accounts for every replicated record.
    use lemp_store::replication::bootstrap;
    use lemp_store::{recover, DurableEngine, StoreOptions, SyncPolicy};

    let leader_dir = std::env::temp_dir().join(format!("lemp-e2e-repl-l-{}", std::process::id()));
    let follower_dir = std::env::temp_dir().join(format!("lemp-e2e-repl-f-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
    let options = StoreOptions { sync: SyncPolicy::Always, ..Default::default() };

    let probes = fixture(80, 31);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let engine = DynamicLemp::new(&probes, policy, config);
    let durable = DurableEngine::create(&leader_dir, engine, options).unwrap();
    let mut leader = Server::bind("127.0.0.1:0", durable, ServeConfig::default()).unwrap();
    let repl_addr = leader.enable_leader("127.0.0.1:0").unwrap();
    let leader_handle = leader.start().unwrap();
    let leader_addr = leader_handle.addr();

    // Edits that land before the follower exists (they ride the WAL, not
    // the snapshot).
    let extra = fixture(6, 32);
    let body = obj(vec![("insert", queries_json(&extra, 0, 4))]);
    let (status, reply) = client::post(leader_addr, "/probes", &body).unwrap();
    assert_eq!(status, 200, "{reply:?}");

    // Bootstrap the follower from the leader's wire snapshot.
    let (status, payload) =
        client::request_bytes(repl_addr, "GET", "/repl/snapshot", Some(Duration::from_secs(10)))
            .unwrap();
    assert_eq!(status, 200);
    let (follower_store, report) = bootstrap(&follower_dir, &payload, options).unwrap();
    assert_eq!(report.snapshot_lsn, 0);
    assert_eq!(report.live_probes, 80);
    let mut follower = Server::bind("127.0.0.1:0", follower_store, ServeConfig::default()).unwrap();
    follower.replicate_from(repl_addr.to_string()).unwrap();
    let follower_handle = follower.start().unwrap();
    let follower_addr = follower_handle.addr();

    // More edits while the follower is tailing.
    let body = obj(vec![("insert", queries_json(&extra, 4, 6))]);
    let (status, _) = client::post(leader_addr, "/probes", &body).unwrap();
    assert_eq!(status, 200);

    // Wait for the follower to fully catch up (86 probes, lag 0).
    let mut caught_up = false;
    for _ in 0..100 {
        let (_, stats) = client::get(follower_addr, "/stats").unwrap();
        let probes_live =
            stats.get("engine").and_then(|e| e.get("probes")).and_then(Json::as_u64).unwrap();
        let repl = stats.get("replication").expect("follower stats carry replication");
        assert_eq!(repl.get("role").and_then(Json::as_str), Some("follower"));
        let lag = repl.get("lag_lsn").and_then(Json::as_u64).unwrap();
        if probes_live == 86 && lag == 0 {
            caught_up = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(caught_up, "follower never reached lag 0 with 86 probes");

    // Leader and follower answer identically.
    let queries = fixture(12, 33);
    let body =
        obj(vec![("queries", queries_json(&queries, 0, queries.len())), ("k", Json::Num(5.0))]);
    let (ls, lreply) = client::post(leader_addr, "/top-k", &body).unwrap();
    let (fs, freply) = client::post(follower_addr, "/top-k", &body).unwrap();
    assert_eq!((ls, fs), (200, 200));
    assert!(
        topk_equivalent(&parse_lists(&lreply), &parse_lists(&freply), 1e-12),
        "follower answers diverge from the leader"
    );

    // The leader tracks its follower's progress.
    let (_, lstats) = client::get(leader_addr, "/stats").unwrap();
    let lrepl = lstats.get("replication").expect("leader stats carry replication");
    assert_eq!(lrepl.get("role").and_then(Json::as_str), Some("leader"));
    let followers = lrepl.get("followers").and_then(Json::as_arr).unwrap();
    assert!(!followers.is_empty(), "leader reports no follower progress");

    // Read-only until promoted; promote only applies to followers.
    let edit = obj(vec![("insert", queries_json(&extra, 0, 1))]);
    let (status, _) = client::post(follower_addr, "/probes", &edit).unwrap();
    assert_eq!(status, 409, "follower must refuse edits before promote");
    let (status, _) = client::post(leader_addr, "/promote", &obj(vec![])).unwrap();
    assert_eq!(status, 409, "a leader must refuse promotion");

    // Promote: the follower fences its log (epoch 1 consumes LSN 6) and
    // flips read-write.
    let (status, reply) = client::post(follower_addr, "/promote", &obj(vec![])).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    assert_eq!(reply.get("promoted").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("fence_epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("next_lsn").and_then(Json::as_u64), Some(7));
    let (status, reply) = client::post(follower_addr, "/probes", &edit).unwrap();
    assert_eq!(status, 200, "{reply:?}");
    let (_, health) = client::get(follower_addr, "/healthz").unwrap();
    assert_eq!(health.get("probes").and_then(Json::as_u64), Some(87));

    // A second promote hits the fence: structured rejection, not a
    // second epoch.
    let (status, reply) = client::post(follower_addr, "/promote", &obj(vec![])).unwrap();
    assert_eq!(status, 409, "{reply:?}");
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("already_fenced"));
    assert_eq!(reply.get("fence_epoch").and_then(Json::as_u64), Some(1));

    // The promoted follower advertises its fence in /stats.
    let (_, stats) = client::get(follower_addr, "/stats").unwrap();
    let repl = stats.get("replication").unwrap();
    assert_eq!(repl.get("fence_epoch").and_then(Json::as_u64), Some(1));

    leader_handle.shutdown();
    follower_handle.shutdown();

    // The follower's store accounts for every record: 6 replicated + 1
    // fencing epoch + 1 local post-promote, all replayed from its own log.
    let (recovered, report) = recover(&follower_dir).unwrap();
    assert_eq!(report.snapshot_lsn, 0);
    assert_eq!(report.records_replayed, 8);
    assert_eq!(report.fence_epoch, 1);
    assert_eq!(recovered.len(), 87);
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

/// Builds a warmed durable leader store in `dir` (80 probes).
fn durable_leader_store(dir: &std::path::Path, seed: u64) -> lemp_store::DurableEngine {
    use lemp_store::{DurableEngine, StoreOptions, SyncPolicy};
    let _ = std::fs::remove_dir_all(dir);
    let probes = fixture(80, seed);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let engine = DynamicLemp::new(&probes, policy, config);
    let options = StoreOptions { sync: SyncPolicy::Always, ..Default::default() };
    DurableEngine::create(dir, engine, options).unwrap()
}

#[test]
fn quorum_timeout_without_followers_keeps_the_edit_durable() {
    // sync-replicas=1 with zero connected followers: every edit must come
    // back as a structured quorum_timeout 503, never a 200 — and still be
    // fsynced locally, proving the 503 means "replication lagged", not
    // "edit lost". A restart with the same config then serves the edit.
    use lemp_store::{recover, DurableEngine, StoreOptions, SyncPolicy};

    let dir = std::env::temp_dir().join(format!("lemp-e2e-quorum-solo-{}", std::process::id()));
    let store = durable_leader_store(&dir, 41);
    let cfg = ServeConfig {
        sync_replicas: 1,
        quorum_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let mut leader = Server::bind("127.0.0.1:0", store, cfg).unwrap();
    leader.enable_leader("127.0.0.1:0").unwrap();
    let handle = leader.start().unwrap();
    let addr = handle.addr();

    let extra = fixture(2, 42);
    let edit = obj(vec![("insert", queries_json(&extra, 0, 1))]);
    let (status, reply) = client::post(addr, "/probes", &edit).unwrap();
    assert_eq!(status, 503, "{reply:?}");
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("quorum_timeout"));
    assert_eq!(reply.get("required").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("acked").and_then(Json::as_u64), Some(0));
    assert_eq!(reply.get("lsn").and_then(Json::as_u64), Some(1));

    // The engine applied the edit (503 reports delayed replication, not a
    // rollback), queries keep working, and the counter ticks.
    let (_, health) = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.get("probes").and_then(Json::as_u64), Some(81));
    let (_, stats) = client::get(addr, "/stats").unwrap();
    let counters = stats.get("counters").unwrap();
    assert_eq!(counters.get("quorum_timeouts").and_then(Json::as_u64), Some(1));

    // Removals time out the same way.
    let removal = obj(vec![("remove", Json::Arr(vec![Json::Num(0.0)]))]);
    let (status, reply) = client::post(addr, "/probes", &removal).unwrap();
    assert_eq!(status, 503, "{reply:?}");
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("quorum_timeout"));

    handle.shutdown();

    // Both "timed out" edits are on disk.
    let (recovered, report) = recover(&dir).unwrap();
    assert_eq!(report.records_replayed, 2);
    assert_eq!(recovered.len(), 80); // +1 insert, -1 removal
    assert!(!recovered.contains(0));

    // Leader restart with sync-replicas still set and zero followers:
    // boots, serves reads, and keeps refusing unreplicated acks.
    let options = StoreOptions { sync: SyncPolicy::Always, ..Default::default() };
    let (store, _) = DurableEngine::open(&dir, options).unwrap();
    let cfg = ServeConfig {
        sync_replicas: 1,
        quorum_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let mut leader = Server::bind("127.0.0.1:0", store, cfg).unwrap();
    leader.enable_leader("127.0.0.1:0").unwrap();
    let handle = leader.start().unwrap();
    let addr = handle.addr();
    let (_, health) = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.get("probes").and_then(Json::as_u64), Some(80));
    let queries = fixture(4, 43);
    let body = obj(vec![("queries", queries_json(&queries, 0, 4)), ("k", Json::Num(3.0))]);
    let (status, _) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200, "reads must flow with an unmet quorum");
    let (status, reply) = client::post(addr, "/probes", &edit).unwrap();
    assert_eq!(status, 503, "{reply:?}");
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("quorum_timeout"));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quorum_acks_with_a_tailing_follower_then_times_out_after_its_death() {
    // The happy path: with one live follower, sync-replicas=1 edits are
    // acknowledged with 200. After the follower acks LSN N and dies, the
    // next edit (N+1) must time out once the TTL expires its ghost row —
    // a stale acked_lsn must never satisfy a quorum it no longer covers.
    use lemp_store::replication::bootstrap;
    use lemp_store::{StoreOptions, SyncPolicy};

    let leader_dir = std::env::temp_dir().join(format!("lemp-e2e-ql-{}", std::process::id()));
    let follower_dir = std::env::temp_dir().join(format!("lemp-e2e-qf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&follower_dir);
    let options = StoreOptions { sync: SyncPolicy::Always, ..Default::default() };

    let store = durable_leader_store(&leader_dir, 51);
    let ttl = Duration::from_millis(900);
    let cfg = ServeConfig {
        sync_replicas: 1,
        quorum_timeout: Duration::from_secs(5),
        follower_ttl: ttl,
        ..Default::default()
    };
    let mut leader = Server::bind("127.0.0.1:0", store, cfg).unwrap();
    let repl_addr = leader.enable_leader("127.0.0.1:0").unwrap();
    let leader_handle = leader.start().unwrap();
    let leader_addr = leader_handle.addr();

    let (status, payload) =
        client::request_bytes(repl_addr, "GET", "/repl/snapshot", Some(Duration::from_secs(10)))
            .unwrap();
    assert_eq!(status, 200);
    let (follower_store, _) = bootstrap(&follower_dir, &payload, options).unwrap();
    let mut follower = Server::bind("127.0.0.1:0", follower_store, ServeConfig::default()).unwrap();
    follower.replicate_from(repl_addr.to_string()).unwrap();
    let follower_handle = follower.start().unwrap();
    let follower_addr = follower_handle.addr();

    // Semi-synchronous 200: the ack waited for the follower's watermark.
    let extra = fixture(3, 52);
    let edit = obj(vec![("insert", queries_json(&extra, 0, 1))]);
    let (status, reply) = client::post(leader_addr, "/probes", &edit).unwrap();
    assert_eq!(status, 200, "quorum of 1 live follower must ack: {reply:?}");

    // The follower is fully durable at the acked LSN, and an idle leader
    // leaves lag_lsn pinned at 0 (the gauge refreshes on empty long
    // polls, not only when a batch arrives).
    let mut zero_lags = 0;
    for _ in 0..50 {
        let (_, stats) = client::get(follower_addr, "/stats").unwrap();
        let repl = stats.get("replication").unwrap();
        let probes_live =
            stats.get("engine").and_then(|e| e.get("probes")).and_then(Json::as_u64).unwrap();
        if probes_live == 81 && repl.get("lag_lsn").and_then(Json::as_u64) == Some(0) {
            zero_lags += 1;
            if zero_lags == 3 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(zero_lags, 3, "follower lag must settle at 0 while the leader idles");

    // The follower acks LSN N, then crashes before N+1 exists.
    follower_handle.shutdown();
    std::thread::sleep(ttl + Duration::from_millis(300));

    // Its ghost row has expired: /stats lists no followers…
    let (_, stats) = client::get(leader_addr, "/stats").unwrap();
    let followers =
        stats.get("replication").and_then(|r| r.get("followers")).and_then(Json::as_arr).unwrap();
    assert!(followers.is_empty(), "expired follower must leave /stats: {followers:?}");

    // …and the next edit cannot ride the stale acked_lsn: quorum_timeout.
    let edit = obj(vec![("insert", queries_json(&extra, 1, 2))]);
    let start = std::time::Instant::now();
    let (status, reply) = client::post(leader_addr, "/probes", &edit).unwrap();
    assert_eq!(status, 503, "{reply:?}");
    assert_eq!(reply.get("code").and_then(Json::as_str), Some("quorum_timeout"));
    assert!(start.elapsed() >= Duration::from_secs(5), "must wait out the quorum window");

    leader_handle.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

#[test]
fn concurrent_promotes_elect_exactly_one_winner() {
    // Two promotes racing: exactly one may fence the store. The loser
    // gets the structured already_fenced rejection, and the epoch ends at
    // 1 — never 2.
    use lemp_store::replication::bootstrap;
    use lemp_store::{StoreOptions, SyncPolicy};

    let leader_dir = std::env::temp_dir().join(format!("lemp-e2e-race-l-{}", std::process::id()));
    let follower_dir = std::env::temp_dir().join(format!("lemp-e2e-race-f-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&follower_dir);
    let options = StoreOptions { sync: SyncPolicy::Always, ..Default::default() };

    let store = durable_leader_store(&leader_dir, 61);
    let mut leader = Server::bind("127.0.0.1:0", store, ServeConfig::default()).unwrap();
    let repl_addr = leader.enable_leader("127.0.0.1:0").unwrap();
    let leader_handle = leader.start().unwrap();

    let (status, payload) =
        client::request_bytes(repl_addr, "GET", "/repl/snapshot", Some(Duration::from_secs(10)))
            .unwrap();
    assert_eq!(status, 200);
    let (follower_store, _) = bootstrap(&follower_dir, &payload, options).unwrap();
    let mut follower = Server::bind("127.0.0.1:0", follower_store, ServeConfig::default()).unwrap();
    follower.replicate_from(repl_addr.to_string()).unwrap();
    let follower_handle = follower.start().unwrap();
    let follower_addr = follower_handle.addr();

    let results: Vec<(u16, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || client::post(follower_addr, "/promote", &obj(vec![])).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wins: Vec<&(u16, Json)> = results.iter().filter(|(s, _)| *s == 200).collect();
    let losses: Vec<&(u16, Json)> = results.iter().filter(|(s, _)| *s == 409).collect();
    assert_eq!((wins.len(), losses.len()), (1, 1), "{results:?}");
    assert_eq!(wins[0].1.get("fence_epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(losses[0].1.get("code").and_then(Json::as_str), Some("already_fenced"));
    assert_eq!(losses[0].1.get("fence_epoch").and_then(Json::as_u64), Some(1));

    follower_handle.shutdown();
    leader_handle.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

// ---- /metrics exposition -------------------------------------------------

/// Fetches `/metrics`, validates the Prometheus text exposition, and
/// returns the samples keyed by `name{labels}`.
fn scrape_metrics(addr: std::net::SocketAddr) -> std::collections::HashMap<String, f64> {
    let (status, body) =
        client::request_bytes(addr, "GET", "/metrics", Some(Duration::from_secs(10))).unwrap();
    assert_eq!(status, 200);
    parse_exposition(&String::from_utf8(body).expect("metrics body is utf-8"))
}

/// Scrapes until `key` reaches `expected`. The serving thread records its
/// HTTP observation after the response bytes are written, so a scrape
/// racing the last response can run one observation behind; the window is
/// microseconds, but under parallel-test load it is real.
fn scrape_settled(
    addr: std::net::SocketAddr,
    key: &str,
    expected: f64,
) -> std::collections::HashMap<String, f64> {
    let mut samples = scrape_metrics(addr);
    for _ in 0..400 {
        if samples.get(key) == Some(&expected) {
            return samples;
        }
        std::thread::sleep(Duration::from_millis(5));
        samples = scrape_metrics(addr);
    }
    panic!("{key} never reached {expected}, last saw {:?}", samples.get(key));
}

/// Minimal exposition-format checker: metric-name syntax, `# TYPE` before
/// samples, no duplicate series, cumulative histogram buckets ending at
/// `+Inf` == `_count`.
fn parse_exposition(text: &str) -> std::collections::HashMap<String, f64> {
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut samples: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line has a kind");
            assert!(
                name.chars().enumerate().all(|(i, c)| c == '_'
                    || c == ':'
                    || c.is_ascii_alphabetic()
                    || (i > 0 && c.is_ascii_digit())),
                "invalid metric name {name}"
            );
            types.insert(name.to_string(), kind.to_string());
        } else if line.starts_with('#') || line.is_empty() {
            continue;
        } else {
            let (key, value) = line.rsplit_once(' ').expect("sample line");
            let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
            let name = key.split('{').next().unwrap();
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| {
                    name.strip_suffix(s)
                        .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
                })
                .unwrap_or(name);
            assert!(types.contains_key(family), "sample {key} precedes its # TYPE line");
            assert!(samples.insert(key.to_string(), value).is_none(), "duplicate series {key}");
        }
    }
    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let count_prefix = format!("{name}_count");
        let count_keys: Vec<String> =
            samples.keys().filter(|k| k.starts_with(&count_prefix)).cloned().collect();
        assert!(!count_keys.is_empty(), "histogram {name} has no _count");
        for count_key in count_keys {
            let labels =
                count_key[count_prefix.len()..].trim_start_matches('{').trim_end_matches('}');
            let bucket_prefix =
                format!("{name}_bucket{{{labels}{}le=\"", if labels.is_empty() { "" } else { "," });
            let mut buckets: Vec<(f64, f64)> = samples
                .iter()
                .filter_map(|(k, &v)| {
                    let le = k.strip_prefix(&bucket_prefix)?.strip_suffix("\"}")?;
                    Some((if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? }, v))
                })
                .collect();
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            assert!(!buckets.is_empty(), "histogram series {count_key} has no buckets");
            assert!(
                buckets.windows(2).all(|w| w[0].1 <= w[1].1),
                "{name}{{{labels}}} buckets are not cumulative"
            );
            let &(last_le, inf_count) = buckets.last().unwrap();
            assert_eq!(last_le, f64::INFINITY, "{name}{{{labels}}} misses the +Inf bucket");
            assert_eq!(inf_count, samples[&count_key], "{name}{{{labels}}} +Inf != _count");
        }
    }
    samples
}

#[test]
fn metrics_count_requests_and_engine_telemetry_on_a_plain_server() {
    let probes = fixture(200, 51);
    let queries = fixture(8, 52);
    let handle = boot(&probes, ServeConfig::default());
    let addr = handle.addr();

    // Sequential requests: no micro-batch folding, so every count below is
    // exact.
    const POSTS: usize = 7;
    for i in 0..POSTS {
        let lo = i % 4;
        let body =
            obj(vec![("queries", queries_json(&queries, lo, lo + 2)), ("k", Json::Num(3.0))]);
        let (status, _) = client::post(addr, "/top-k", &body).unwrap();
        assert_eq!(status, 200);
    }
    let theta = obj(vec![("queries", queries_json(&queries, 0, 2)), ("theta", Json::Num(0.5))]);
    let (status, _) = client::post(addr, "/above-theta", &theta).unwrap();
    assert_eq!(status, 200);

    scrape_settled(addr, "lemp_http_request_duration_seconds_count{path=\"/top-k\"}", POSTS as f64);
    let samples = scrape_settled(
        addr,
        "lemp_http_request_duration_seconds_count{path=\"/above-theta\"}",
        1.0,
    );
    let key = |k: &str| samples[k];
    assert_eq!(key("lemp_http_request_duration_seconds_count{path=\"/top-k\"}"), POSTS as f64);
    assert_eq!(key("lemp_http_request_body_bytes_count{path=\"/top-k\"}"), POSTS as f64);
    assert!(key("lemp_http_request_body_bytes_sum{path=\"/top-k\"}") > 0.0);
    assert_eq!(key("lemp_http_request_duration_seconds_count{path=\"/above-theta\"}"), 1.0);
    assert_eq!(key("lemp_engine_requests_total{kind=\"top-k\"}"), POSTS as f64);
    assert_eq!(key("lemp_engine_requests_total{kind=\"above-theta\"}"), 1.0);
    assert_eq!(key("lemp_engine_queries_total"), (POSTS * 2 + 2) as f64);
    assert!(key("lemp_engine_candidates_total") > 0.0);
    assert!(key("lemp_engine_results_total") > 0.0);
    assert!(key("lemp_engine_pruned_total") >= 0.0);
    // Every engine execution resolves a plan: hits + misses + refreshes
    // account for all of them.
    let plans = key("lemp_plan_cache_hits_total")
        + key("lemp_plan_cache_misses_total")
        + key("lemp_plan_refreshes_total");
    assert_eq!(plans, (POSTS + 1) as f64, "plan-cache counters must partition engine runs");
    assert_eq!(key("lemp_engine_probes"), probes.len() as f64);
    assert_eq!(key("lemp_engine_shards"), 1.0);
    assert!(key("lemp_engine_memory_bytes{kind=\"full\"}") > 0.0);
    assert!(key("lemp_uptime_seconds") >= 0.0);
    // No slow-query threshold configured: the counter stays flat.
    assert_eq!(key("lemp_slow_queries_total"), 0.0);

    // The scrape endpoint observes itself: a later scrape counts the
    // earlier ones.
    let again = scrape_metrics(addr);
    let metrics_count = "lemp_http_request_duration_seconds_count{path=\"/metrics\"}";
    assert!(again[metrics_count] >= 1.0, "scrapes of /metrics are themselves observed");
    assert!(again[metrics_count] >= samples[metrics_count]);

    // /stats carries the new uptime field alongside its snapshot.
    let (status, stats) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    assert!(stats.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
    handle.shutdown();
}

#[test]
fn metrics_report_quant_method_mix_on_a_quantized_server() {
    let probes = fixture(300, 61);
    let queries = fixture(16, 62);
    let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
    // quantize_force: the tuner's LUT-vs-exact choice is measured
    // wall-clock and flips with machine load; forcing it keeps this test
    // deterministic.
    let config =
        RunConfig { sample_size: 8, quantize_bits: 8, quantize_force: true, ..Default::default() };
    let mut engine = DynamicLemp::new(&probes, policy, config);
    engine.warm(&queries, WarmGoal::TopK(5));
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    let body =
        obj(vec![("queries", queries_json(&queries, 0, queries.len())), ("k", Json::Num(5.0))]);
    let (status, _) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200);

    let samples = scrape_metrics(addr);
    assert!(
        samples["lemp_engine_method_pairs_total{algo=\"QUANT\"}"] > 0.0,
        "a quantized engine must score pairs through the QUANT kernel"
    );
    assert!(samples["lemp_engine_memory_bytes{kind=\"quantized\"}"] > 0.0);
    handle.shutdown();
}

#[test]
fn metrics_expose_wal_gauges_on_a_durable_server() {
    use lemp_store::{DurableEngine, StoreOptions};

    let dir = std::env::temp_dir().join(format!("lemp-e2e-metrics-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let probes = fixture(120, 71);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let engine = DynamicLemp::new(&probes, policy, config);
    let durable = DurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
    let server = Server::bind("127.0.0.1:0", durable, ServeConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    let extra = fixture(3, 72);
    let body = obj(vec![("insert", queries_json(&extra, 0, 3))]);
    let (status, _) = client::post(addr, "/probes", &body).unwrap();
    assert_eq!(status, 200);

    let samples =
        scrape_settled(addr, "lemp_http_request_duration_seconds_count{path=\"/probes\"}", 1.0);
    assert_eq!(samples["lemp_wal_records_appended"], 3.0);
    assert_eq!(samples["lemp_wal_durable_lsn"], 3.0, "Always sync keeps durable == appended");
    assert!(samples["lemp_wal_bytes_appended"] > 0.0);
    assert!(samples["lemp_wal_fsyncs"] >= 3.0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_expose_shard_gauges_on_a_sharded_server() {
    let probes = fixture(240, 81);
    let queries = fixture(8, 82);
    let engine = ShardedLemp::builder()
        .shards(3)
        .policy(ShardPolicy::LengthBanded)
        .sample_size(8)
        .threads(2)
        .build(&probes);
    let server = Server::bind("127.0.0.1:0", engine, ServeConfig::default()).unwrap();
    let handle = server.start().unwrap();
    let addr = handle.addr();

    let body = obj(vec![("queries", queries_json(&queries, 0, 4)), ("k", Json::Num(3.0))]);
    let (status, _) = client::post(addr, "/top-k", &body).unwrap();
    assert_eq!(status, 200);

    let samples = scrape_metrics(addr);
    assert_eq!(samples["lemp_engine_shards"], 3.0);
    assert_eq!(samples["lemp_engine_probes"], probes.len() as f64);
    assert!(samples["lemp_engine_buckets"] >= 3.0, "every shard buckets its probes");
    assert!(samples["lemp_engine_candidates_total"] > 0.0);
    handle.shutdown();
}

#[test]
fn metrics_expose_replication_gauges_on_both_roles() {
    use lemp_store::replication::bootstrap;
    use lemp_store::{StoreOptions, SyncPolicy};

    let leader_dir =
        std::env::temp_dir().join(format!("lemp-e2e-metrics-rl-{}", std::process::id()));
    let follower_dir =
        std::env::temp_dir().join(format!("lemp-e2e-metrics-rf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&follower_dir);
    let options = StoreOptions { sync: SyncPolicy::Always, ..Default::default() };

    let mut leader =
        Server::bind("127.0.0.1:0", durable_leader_store(&leader_dir, 91), ServeConfig::default())
            .unwrap();
    let repl_addr = leader.enable_leader("127.0.0.1:0").unwrap();
    let leader_handle = leader.start().unwrap();
    let leader_addr = leader_handle.addr();

    let (status, payload) =
        client::request_bytes(repl_addr, "GET", "/repl/snapshot", Some(Duration::from_secs(10)))
            .unwrap();
    assert_eq!(status, 200);
    let (follower_store, _) = bootstrap(&follower_dir, &payload, options).unwrap();
    let mut follower = Server::bind("127.0.0.1:0", follower_store, ServeConfig::default()).unwrap();
    follower.replicate_from(repl_addr.to_string()).unwrap();
    let follower_handle = follower.start().unwrap();
    let follower_addr = follower_handle.addr();

    // One replicated edit, then wait for the follower to catch up.
    let extra = fixture(2, 92);
    let body = obj(vec![("insert", queries_json(&extra, 0, 2))]);
    let (status, _) = client::post(leader_addr, "/probes", &body).unwrap();
    assert_eq!(status, 200);
    let mut caught_up = false;
    for _ in 0..100 {
        let samples = scrape_metrics(follower_addr);
        assert_eq!(samples["lemp_replication_role"], 2.0, "follower advertises role 2");
        if samples["lemp_replication_lag_lsn"] == 0.0 && samples["lemp_engine_probes"] == 82.0 {
            caught_up = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(caught_up, "follower never reported lag 0 at 82 probes via /metrics");

    // The leader advertises its role and per-follower progress.
    let samples = scrape_metrics(leader_addr);
    assert_eq!(samples["lemp_replication_role"], 1.0, "leader advertises role 1");
    assert_eq!(samples["lemp_replication_fence_epoch"], 0.0);
    assert_eq!(samples["lemp_replication_followers"], 1.0);
    let acked: Vec<&String> =
        samples.keys().filter(|k| k.starts_with("lemp_replication_follower_acked_lsn{")).collect();
    assert_eq!(acked.len(), 1, "exactly one follower series: {acked:?}");
    assert_eq!(samples[acked[0]], 2.0, "follower acked both edit records");

    leader_handle.shutdown();
    follower_handle.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}
