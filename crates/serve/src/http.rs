//! Hand-rolled HTTP/1.1 request parsing and response writing over
//! `std::net::TcpStream`.
//!
//! The server speaks the minimal subset the service needs: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only (no chunked encoding), case-insensitive header lookup, and
//! hard caps on header and body size so a hostile peer cannot balloon
//! memory. Anything outside the subset maps to a clean 4xx instead of a
//! hang.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw query string after `?` (empty when absent); see
    /// [`Request::query_param`].
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a query-string parameter by exact key (no percent
    /// decoding — this API only passes numbers and plain identifiers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts).
    Io(io::Error),
    /// The bytes were not an acceptable HTTP/1.1 request; the server
    /// responds with this status and message.
    Bad {
        /// Response status to send (400, 413, 405, …).
        status: u16,
        /// Human-readable reason, returned in the JSON error body.
        message: String,
    },
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> HttpError {
    HttpError::Bad { status, message: message.into() }
}

/// Reads and parses one request from the stream. `max_body` caps the
/// declared `Content-Length`.
///
/// # Errors
/// [`HttpError::Io`] on socket failures/timeouts, [`HttpError::Bad`] on
/// malformed or oversized requests.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Read until the end of the head ("\r\n\r\n"), never past MAX_HEAD.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut head_end = None;
    let mut chunk = [0u8; 1024];
    while head_end.is_none() {
        if buf.len() > MAX_HEAD {
            return Err(bad(431, "request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad(400, "connection closed before a full request head"));
        }
        buf.extend_from_slice(&chunk[..n]);
        head_end = find_head_end(&buf);
    }
    let head_end = head_end.expect("loop exits only when found");
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or_else(|| bad(400, "missing method"))?.to_uppercase();
    let target = parts.next().ok_or_else(|| bad(400, "missing request target"))?;
    let version = parts.next().ok_or_else(|| bad(400, "missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(505, format!("unsupported version {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length =
                value.parse().map_err(|_| bad(400, format!("bad Content-Length {value:?}")))?;
        } else if name == "transfer-encoding" {
            return Err(bad(501, "chunked transfer encoding is not supported"));
        }
    }
    if content_length > max_body {
        return Err(bad(413, format!("body of {content_length} bytes exceeds the limit")));
    }

    // Body: whatever followed the head in the buffer, then the rest.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(bad(400, "more body bytes than Content-Length declares"));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(bad(400, "more body bytes than Content-Length declares"));
        }
    }
    Ok(Request { method, path, query, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. Every response closes the
/// connection (one request per connection keeps the worker pool fair under
/// load shedding).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_bytes(stream, status, "application/json", body.as_bytes())
}

/// Writes a complete response with an explicit content type and a binary
/// body (the replication endpoints ship `application/octet-stream`
/// payloads) and flushes. Closes the connection like [`write_response`].
pub fn write_response_bytes(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw client bytes via a real socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open long enough for the server side to read.
            s.shutdown(std::net::Shutdown::Write).ok();
        });
        let (mut server, _) = listener.accept().unwrap();
        let out = read_request(&mut server, 1024);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw(b"POST /top-k HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"k\": 3}\n")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/top-k");
        assert_eq!(req.body, b"{\"k\": 3}\n");
    }

    #[test]
    fn parses_get_without_body_and_keeps_query() {
        let req = parse_raw(b"get /stats?verbose=1&id=a HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.query, "verbose=1&id=a");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("id"), Some("a"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = parse_raw(b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_requests() {
        for (raw, want_status) in [
            (&b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"[..], 413),
            (&b"POST / HTTP/2\r\n\r\n"[..], 505),
            (&b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..], 501),
            (&b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..], 400),
            (&b"BROKEN\r\n\r\n"[..], 400),
        ] {
            match parse_raw(raw) {
                Err(HttpError::Bad { status, .. }) => assert_eq!(status, want_status),
                other => panic!("expected Bad({want_status}), got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_truncated_body() {
        let err = parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
        assert!(matches!(err, Err(HttpError::Bad { status: 400, .. })));
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            write_response(&mut s, 503, "{\"error\":\"overloaded\"}").unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"overloaded\"}"));
    }
}
