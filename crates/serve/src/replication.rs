//! Role-aware replication plumbing for the server: the leader's
//! replication listener, the follower's tail loop, quorum bookkeeping
//! for semi-synchronous acknowledgments, and promote fencing.
//!
//! The leader side is a second, dedicated listener (bound via
//! `lemp serve … replication=<addr>`) speaking the same hand-rolled
//! HTTP/1.1 as the query surface, with binary `lemp-store` replication
//! payloads as bodies:
//!
//! * `GET /repl/snapshot` → the `LEMPSNP2` bootstrap payload
//!   ([`lemp_store::replication::read_bootstrap`]).
//! * `GET /repl/wal?from=<lsn>&wait=<ms>&id=<follower>&epoch=<e>` → one
//!   `LEMPREP2` batch from the leader's on-disk log
//!   ([`lemp_store::replication::feed`]), long-polling up to `wait`
//!   milliseconds when the follower is caught up; `410 Gone` with
//!   `first_available` when compaction pruned past `from`; `409` with
//!   `code: "fenced"` when the follower announces a fencing epoch newer
//!   than the leader's — a fenced ex-leader must not feed anyone.
//!
//! The follower side is one background thread that long-polls the leader
//! from the store's own watermark, applies each batch under the engine
//! write lock through [`DurableEngine::apply_replicated`] (the same
//! self-verifying replay crash recovery uses), and maintains the
//! `replication.lag_lsn` gauge. Because the request LSN is always re-read
//! from the store, the loop is idempotent across retries, leader restarts,
//! and follower restarts — it resumes from whatever is durable locally.
//!
//! # Quorum acknowledgments
//!
//! With `sync-replicas=<n>` the leader holds every `POST /probes`
//! response until `n` distinct followers' durable watermarks cover the
//! edit's LSN. The watermark is the `from` a follower sends on its *next*
//! poll — everything below it is applied and fsynced over there — so no
//! extra ack round-trip exists: the poll itself is the ack.
//! [`ReplState::await_quorum`] blocks on a condvar that every follower
//! poll signals; only followers seen within `follower-ttl` count, so a
//! ghost entry from a crashed follower can neither satisfy nor
//! permanently block a quorum.
//!
//! # Fencing
//!
//! `POST /promote` appends a fencing-epoch record to the follower's own
//! log ([`lemp_store::DurableEngine::fence`]) before acknowledging. The
//! epoch replicates like any record, rides batch headers, and is
//! announced by followers on every poll, so after a failover the old
//! leader is rejected on every path: its feed answers `409 fenced`, its
//! batches carry a stale epoch, and `apply_replicated` refuses
//! non-monotonic epoch records. A second promote against an
//! already-fenced store answers `409` with `code: "already_fenced"`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lemp_store::replication::{decode_batch, feed, read_bootstrap, Feed, MAX_BATCH_RECORDS};

use crate::json::{obj, Json};
use crate::{client, http, Shared};

// Role values for `ReplState::role`; `0` (the atomic's default) means no
// replication role.
/// Serving a replication listener for followers.
pub(crate) const ROLE_LEADER: u8 = 1;
/// Tail-following a leader (read-only until promoted).
pub(crate) const ROLE_FOLLOWER: u8 = 2;

/// How long one leader-side long poll lasts at most, and the cap a
/// follower may request.
const MAX_WAIT_MS: u64 = 10_000;

/// The follower's long-poll window per request.
const TAIL_WAIT_MS: u64 = 500;

/// Pause between leader-side polls of its own log during a long poll and
/// between acceptor polls of the nonblocking listener; also the
/// follower's retry backoff after an unreachable leader.
const POLL_SLEEP: Duration = Duration::from_millis(25);
const RETRY_BACKOFF: Duration = Duration::from_millis(200);

/// Per-follower progress, keyed by the follower-supplied `id`.
pub(crate) struct FollowerProgress {
    pub(crate) id: String,
    /// The follower's durable watermark as of its latest request — every
    /// record below it is applied *and* fsynced over there.
    pub(crate) acked_lsn: u64,
    pub(crate) batches: u64,
    pub(crate) records: u64,
    /// When the follower last polled; entries older than the configured
    /// TTL are expired so a restarted follower's ghost row can neither
    /// satisfy nor block a quorum.
    pub(crate) last_seen: Instant,
}

/// Replication state hanging off [`Shared`] — all of it atomics or
/// mutexes, touched outside the engine lock except where noted.
#[derive(Default)]
pub(crate) struct ReplState {
    pub(crate) role: AtomicU8,
    /// Set under the engine write lock by `POST /promote`; the tail loop
    /// re-checks it under the same lock before applying, so no record
    /// lands after a promote response is sent.
    pub(crate) promoted: AtomicBool,
    /// leader's log end minus this follower's watermark, updated after
    /// every poll (0 when caught up; meaningful on followers only).
    pub(crate) lag: AtomicU64,
    /// The leader address a follower tails.
    pub(crate) leader: Mutex<String>,
    /// The leader's replication listener address (for the shutdown poke).
    pub(crate) listener_addr: Mutex<Option<SocketAddr>>,
    pub(crate) followers: Mutex<Vec<FollowerProgress>>,
    /// Signalled on every follower poll so `await_quorum` wakes as soon
    /// as a watermark advances instead of busy-polling.
    pub(crate) followers_cv: Condvar,
    pub(crate) last_error: Mutex<Option<String>>,
}

impl ReplState {
    /// A follower refuses edits until promoted.
    pub(crate) fn is_read_only(&self) -> bool {
        self.role.load(Ordering::SeqCst) == ROLE_FOLLOWER && !self.promoted.load(Ordering::SeqCst)
    }

    fn record_error(&self, msg: String) {
        eprintln!("replication: {msg}");
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(msg);
    }

    /// The `/stats` `replication` object, or `None` when this server has
    /// no replication role. Expired follower rows are pruned here too, so
    /// `/stats` never advertises a ghost.
    pub(crate) fn stats_json(&self, ttl: Duration, fence_epoch: Option<u64>) -> Option<Json> {
        let role = self.role.load(Ordering::SeqCst);
        let mut fields = vec![(
            "role",
            Json::Str(
                match role {
                    ROLE_LEADER => "leader",
                    ROLE_FOLLOWER => "follower",
                    _ => return None,
                }
                .into(),
            ),
        )];
        fields.push(("lag_lsn", Json::Num(self.lag.load(Ordering::SeqCst) as f64)));
        if let Some(epoch) = fence_epoch {
            fields.push(("fence_epoch", Json::Num(epoch as f64)));
        }
        if role == ROLE_FOLLOWER {
            let leader = self.leader.lock().unwrap_or_else(|e| e.into_inner()).clone();
            fields.push(("leader", Json::Str(leader)));
            fields.push(("promoted", Json::Bool(self.promoted.load(Ordering::SeqCst))));
        }
        if role == ROLE_LEADER {
            let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
            followers.retain(|f| f.last_seen.elapsed() <= ttl);
            let rendered = followers
                .iter()
                .map(|f| {
                    obj(vec![
                        ("id", Json::Str(f.id.clone())),
                        ("acked_lsn", Json::Num(f.acked_lsn as f64)),
                        ("batches", Json::Num(f.batches as f64)),
                        ("records", Json::Num(f.records as f64)),
                    ])
                })
                .collect();
            fields.push(("followers", Json::Arr(rendered)));
        }
        if let Some(err) = self.last_error.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            fields.push(("last_error", Json::Str(err.clone())));
        }
        Some(obj(fields))
    }

    /// The `/metrics` replication gauges, or `None` when this server has
    /// no replication role. Mirrors [`ReplState::stats_json`] — expired
    /// follower rows are pruned under the same TTL, so the two views list
    /// the same followers.
    pub(crate) fn gauges(
        &self,
        ttl: Duration,
        fence_epoch: Option<u64>,
    ) -> Option<crate::metrics::ReplicationGauges> {
        let role = self.role.load(Ordering::SeqCst);
        if role != ROLE_LEADER && role != ROLE_FOLLOWER {
            return None;
        }
        let mut out = crate::metrics::ReplicationGauges {
            role_code: role,
            lag_lsn: self.lag.load(Ordering::SeqCst),
            fence_epoch: fence_epoch.unwrap_or(0),
            followers: Vec::new(),
        };
        if role == ROLE_LEADER {
            let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
            followers.retain(|f| f.last_seen.elapsed() <= ttl);
            out.followers = followers
                .iter()
                .map(|f| crate::metrics::FollowerGauge {
                    id: f.id.clone(),
                    acked_lsn: f.acked_lsn,
                    records: f.records,
                })
                .collect();
        }
        Some(out)
    }

    fn note_follower(&self, id: &str, acked_lsn: u64, records: u64, ttl: Duration) {
        let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
        followers.retain(|f| f.last_seen.elapsed() <= ttl || f.id == id);
        match followers.iter_mut().find(|f| f.id == id) {
            Some(f) => {
                f.acked_lsn = acked_lsn;
                f.last_seen = Instant::now();
                if records > 0 {
                    f.batches += 1;
                    f.records += records;
                }
            }
            None => followers.push(FollowerProgress {
                id: id.to_string(),
                acked_lsn,
                batches: u64::from(records > 0),
                records,
                last_seen: Instant::now(),
            }),
        }
        drop(followers);
        self.followers_cv.notify_all();
    }

    /// Blocks until `need` distinct followers seen within `ttl` have a
    /// durable watermark at or above `target_lsn`, or until `timeout`
    /// elapses. Returns the satisfied count on success, the best count
    /// observed on timeout.
    pub(crate) fn await_quorum(
        &self,
        need: usize,
        target_lsn: u64,
        timeout: Duration,
        ttl: Duration,
    ) -> Result<usize, usize> {
        let deadline = Instant::now() + timeout;
        let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let acked = followers
                .iter()
                .filter(|f| f.last_seen.elapsed() <= ttl && f.acked_lsn >= target_lsn)
                .count();
            if acked >= need {
                return Ok(acked);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(acked);
            }
            // Cap the wait at POLL_SLEEP so a follower *expiring* (which
            // signals nothing) is still noticed promptly.
            let wait = (deadline - now).min(POLL_SLEEP * 4);
            let (guard, _) =
                self.followers_cv.wait_timeout(followers, wait).unwrap_or_else(|e| e.into_inner());
            followers = guard;
        }
    }
}

/// Binds the leader's replication listener and spawns its acceptor.
/// Requires a durable single-store backend (the log being replicated is
/// that store's).
pub(crate) fn start_leader(
    shared: &Arc<Shared>,
    addr: &str,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let dir =
        shared.read_engine().durable_store().map(|s| s.dir().to_path_buf()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replication requires a durable single-store backend (durable=<dir>, no shards)",
            )
        })?;
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    shared.repl.role.store(ROLE_LEADER, Ordering::SeqCst);
    *shared.repl.listener_addr.lock().unwrap_or_else(|e| e.into_inner()) = Some(bound);
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("lemp-repl-acceptor".to_string())
        .spawn(move || {
            let shutdown = Arc::clone(&shared);
            accept_loop(&listener, &shutdown.shutdown, |stream| {
                let shared = Arc::clone(&shared);
                let dir: PathBuf = dir.clone();
                // Thread per connection: follower counts are small, and a
                // long poll must not block the accept loop.
                let _ = std::thread::Builder::new()
                    .name("lemp-repl-conn".to_string())
                    .spawn(move || handle_repl_conn(stream, &shared, &dir));
            });
        })
        .expect("spawn replication acceptor");
    Ok((bound, handle))
}

/// Accepts connections until `shutdown` flips, polling a nonblocking
/// listener. The old acceptor blocked in `accept` and only re-checked the
/// flag after a connection arrived, so shutdown could hang until the next
/// follower happened to connect; polling bounds that to one `POLL_SLEEP`.
pub(crate) fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    mut on_conn: impl FnMut(TcpStream),
) {
    // If the platform refuses nonblocking mode we fall back to blocking
    // accepts; the self-connect nudge in `ServerHandle::shutdown` still
    // unblocks those.
    let nonblocking = listener.set_nonblocking(true).is_ok();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Per-connection I/O must block again (with timeouts set
                // by the handler); nonblocking is an acceptor-only trick.
                let _ = stream.set_nonblocking(false);
                on_conn(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL_SLEEP),
            Err(_) => {
                if !nonblocking {
                    continue;
                }
                std::thread::sleep(POLL_SLEEP);
            }
        }
    }
}

fn write_json(stream: &mut TcpStream, status: u16, body: &Json) {
    let _ = http::write_response(stream, status, &body.render());
}

fn write_json_error(stream: &mut TcpStream, status: u16, message: String) {
    write_json(stream, status, &obj(vec![("error", Json::Str(message))]));
}

fn handle_repl_conn(mut stream: TcpStream, shared: &Arc<Shared>, dir: &Path) {
    let _ = stream.set_read_timeout(shared.cfg.io_timeout);
    let _ = stream.set_write_timeout(shared.cfg.io_timeout);
    let _ = stream.set_nodelay(true);
    let request = match http::read_request(&mut stream, shared.cfg.max_body) {
        Ok(r) => r,
        Err(http::HttpError::Io(_)) => return,
        Err(http::HttpError::Bad { status, message }) => {
            return write_json_error(&mut stream, status, message);
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/repl/snapshot") => match read_bootstrap(dir) {
            Ok(bytes) => {
                let _ = http::write_response_bytes(
                    &mut stream,
                    200,
                    "application/octet-stream",
                    &bytes,
                );
            }
            Err(e) => write_json_error(&mut stream, 500, format!("snapshot feed failed: {e}")),
        },
        ("GET", "/repl/wal") => {
            let Some(from) = request.query_param("from").and_then(|v| v.parse::<u64>().ok()) else {
                return write_json_error(&mut stream, 400, "missing or bad from=<lsn>".into());
            };
            let wait_ms = request
                .query_param("wait")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                .min(MAX_WAIT_MS);
            let id = request.query_param("id").unwrap_or("anonymous").to_string();
            let follower_epoch =
                request.query_param("epoch").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            let leader_epoch = shared.read_engine().durable_store().map_or(0, |s| s.fence_epoch());
            if follower_epoch > leader_epoch {
                // The follower has seen a newer fence than we ever wrote:
                // we are the demoted half of a failover. Refuse to feed —
                // our log may have diverged past the promote point.
                return write_json(
                    &mut stream,
                    409,
                    &obj(vec![
                        (
                            "error",
                            Json::Str(format!(
                                "follower is at fencing epoch {follower_epoch}, \
                                 this leader only at {leader_epoch}; leader is fenced"
                            )),
                        ),
                        ("code", Json::Str("fenced".into())),
                        ("fence_epoch", Json::Num(leader_epoch as f64)),
                    ]),
                );
            }
            shared.repl.note_follower(&id, from, 0, shared.cfg.follower_ttl);
            let deadline = Instant::now() + Duration::from_millis(wait_ms);
            loop {
                match feed(dir, from, MAX_BATCH_RECORDS, leader_epoch) {
                    Ok(Feed::Gap { first_available }) => {
                        return write_json(
                            &mut stream,
                            410,
                            &obj(vec![
                                (
                                    "error",
                                    Json::Str(format!(
                                        "LSN {from} was compacted away; re-bootstrap"
                                    )),
                                ),
                                ("first_available", Json::Num(first_available as f64)),
                            ]),
                        );
                    }
                    Ok(Feed::Batch { bytes, records, .. }) => {
                        let done = records > 0
                            || Instant::now() >= deadline
                            || shared.shutdown.load(Ordering::SeqCst);
                        if done {
                            shared.repl.note_follower(
                                &id,
                                from,
                                records as u64,
                                shared.cfg.follower_ttl,
                            );
                            let _ = http::write_response_bytes(
                                &mut stream,
                                200,
                                "application/octet-stream",
                                &bytes,
                            );
                            return;
                        }
                    }
                    Err(e) => {
                        // Transient (e.g. a segment pruned mid-read during
                        // compaction): the follower retries from its
                        // unchanged watermark.
                        return write_json_error(&mut stream, 500, format!("feed failed: {e}"));
                    }
                }
                std::thread::sleep(POLL_SLEEP);
            }
        }
        (_, path) => write_json_error(&mut stream, 404, format!("unknown path {path:?}")),
    }
}

/// Marks this server a follower of `leader` and spawns the tail loop.
/// Requires a durable single-store backend.
pub(crate) fn start_follower(
    shared: &Arc<Shared>,
    leader: String,
    follower_id: String,
) -> std::io::Result<JoinHandle<()>> {
    if shared.read_engine().durable_store().is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "replicate-from requires a durable single-store backend (durable=<dir>, no shards)",
        ));
    }
    shared.repl.role.store(ROLE_FOLLOWER, Ordering::SeqCst);
    *shared.repl.leader.lock().unwrap_or_else(|e| e.into_inner()) = leader.clone();
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("lemp-repl-tail".to_string())
        .spawn(move || follower_loop(&shared, &leader, &follower_id))
}

fn follower_loop(shared: &Arc<Shared>, leader: &str, follower_id: &str) {
    let mut backoff = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.repl.promoted.load(Ordering::SeqCst) {
            return;
        }
        if backoff {
            std::thread::sleep(RETRY_BACKOFF);
            backoff = false;
        }
        let (from, local_epoch) =
            match shared.read_engine().durable_store().map(|s| (s.next_lsn(), s.fence_epoch())) {
                Some(v) => v,
                None => return,
            };
        let path = format!(
            "/repl/wal?from={from}&wait={TAIL_WAIT_MS}&id={follower_id}&epoch={local_epoch}"
        );
        match client::request_bytes(leader, "GET", &path, Some(Duration::from_secs(30))) {
            Ok((200, bytes)) => match decode_batch(&bytes, from) {
                Ok(batch) => {
                    if batch.epoch < local_epoch {
                        // A batch stamped below our fence is the old
                        // leader still talking after a failover; its log
                        // may have diverged, so stop tailing it outright.
                        shared.repl.record_error(format!(
                            "leader {leader} is at fencing epoch {} but this store is fenced \
                             at {local_epoch}; refusing its batches",
                            batch.epoch
                        ));
                        return;
                    }
                    if batch.records.is_empty() {
                        // Caught up: refresh the lag gauge without taking
                        // the engine write lock. Skipping this left a
                        // stale nonzero lag after the last real batch
                        // whenever the leader went idle, and the CI drill
                        // and loadgen both spin on `lag_lsn == 0`.
                        shared
                            .repl
                            .lag
                            .store(batch.leader_next_lsn.saturating_sub(from), Ordering::SeqCst);
                        continue;
                    }
                    let mut failed = None;
                    let local_next;
                    {
                        let mut engine = shared.write_engine();
                        // Re-check under the lock: a promote that won the
                        // lock first must win outright.
                        if shared.repl.promoted.load(Ordering::SeqCst) {
                            return;
                        }
                        let Some(store) = engine.durable_store_mut() else { return };
                        for (lsn, record) in &batch.records {
                            if let Err(e) = store.apply_replicated(*lsn, record) {
                                failed = Some(format!("apply at LSN {lsn} failed: {e}"));
                                break;
                            }
                        }
                        local_next = store.next_lsn();
                        if local_next > from {
                            // Invalidate cached query plans like any edit.
                            shared.edits.fetch_add(1, Ordering::Release);
                        }
                    }
                    shared
                        .repl
                        .lag
                        .store(batch.leader_next_lsn.saturating_sub(local_next), Ordering::SeqCst);
                    if let Some(msg) = failed {
                        // The leader's log contradicts this store: keep
                        // serving reads, stop tailing (a structured halt,
                        // visible in /stats replication.last_error).
                        shared.repl.record_error(msg);
                        return;
                    }
                }
                Err(e) => {
                    // A truncated or corrupt response; the watermark is
                    // unchanged, so retrying is idempotent.
                    shared.repl.record_error(format!("bad batch from {leader}: {e}"));
                    backoff = true;
                }
            },
            Ok((409, _)) => {
                // The leader admits it is fenced behind this store (or
                // rejects our epoch outright): never tail a stale leader.
                shared.repl.record_error(format!(
                    "leader {leader} rejected fencing epoch {local_epoch} (409); \
                     it is a demoted ex-leader — stopping the tail"
                ));
                return;
            }
            Ok((410, _)) => {
                shared.repl.record_error(format!(
                    "leader {leader} compacted past LSN {from}; re-bootstrap this follower"
                ));
                return;
            }
            Ok((status, _)) => {
                shared.repl.record_error(format!("leader {leader} answered {status}"));
                backoff = true;
            }
            Err(e) => {
                // Leader unreachable (crashed, network blip): keep
                // retrying — the operator decides whether to promote.
                shared.repl.record_error(format!("leader {leader} unreachable: {e}"));
                backoff = true;
            }
        }
    }
}

/// `POST /promote`: a follower stops tailing, fences its log with a fresh
/// epoch, and starts accepting edits. A second promote against an
/// already-fenced store is rejected with `code: "already_fenced"` —
/// exactly one caller wins the fence.
pub(crate) fn handle_promote(mut stream: TcpStream, shared: &Shared) {
    if shared.repl.role.load(Ordering::SeqCst) != ROLE_FOLLOWER {
        return write_json_error(
            &mut stream,
            409,
            "promote applies to a replicating follower".into(),
        );
    }
    let outcome = {
        let mut engine = shared.write_engine();
        // Under the write lock: the tail loop applies batches under this
        // lock and re-checks `promoted` inside it, so once we release, no
        // replicated record can land after the promote is acknowledged.
        // The swap arbitrates concurrent promotes — exactly one proceeds
        // to write the fence.
        if shared.repl.promoted.swap(true, Ordering::SeqCst) {
            let epoch = engine.durable_store().map_or(0, |s| s.fence_epoch());
            Err((
                409,
                obj(vec![
                    ("error", Json::Str("already promoted: this store is fenced".into())),
                    ("code", Json::Str("already_fenced".into())),
                    ("fence_epoch", Json::Num(epoch as f64)),
                ]),
            ))
        } else {
            let fenced = match engine.durable_store_mut() {
                Some(store) => store.fence().map(|(epoch, _lsn)| epoch),
                None => unreachable!("followers always run a durable single-store backend"),
            };
            match fenced {
                Ok(epoch) => {
                    // The fence consumed an LSN; cached plans key on edits.
                    shared.edits.fetch_add(1, Ordering::Release);
                    let next = engine.durable_store().map_or(0, |s| s.next_lsn());
                    Ok((epoch, next, engine.len()))
                }
                Err(e) => {
                    // The fence never became durable: surrender the
                    // promotion so a retry (or a rival) can take it.
                    shared.repl.promoted.store(false, Ordering::SeqCst);
                    Err((500, obj(vec![("error", Json::Str(format!("fencing failed: {e}")))])))
                }
            }
        }
    };
    match outcome {
        Ok((epoch, next_lsn, probes)) => write_json(
            &mut stream,
            200,
            &obj(vec![
                ("promoted", Json::Bool(true)),
                ("fence_epoch", Json::Num(epoch as f64)),
                ("next_lsn", Json::Num(next_lsn as f64)),
                ("probes", Json::Num(probes as f64)),
            ]),
        ),
        Err((status, body)) => write_json(&mut stream, status, &body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_loop_stops_on_shutdown_without_a_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &flag, |_| {}));
        std::thread::sleep(Duration::from_millis(100));
        shutdown.store(true, Ordering::SeqCst);
        // Join through a channel so a regression (acceptor blocked in
        // `accept` with no follower ever connecting) fails the test
        // instead of hanging it.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = acceptor.join();
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("acceptor must notice shutdown without a connection");
    }

    #[test]
    fn await_quorum_counts_only_fresh_followers() {
        let state = ReplState::default();
        let ttl = Duration::from_millis(60);
        state.note_follower("a", 10, 0, ttl);
        assert_eq!(state.await_quorum(1, 10, Duration::from_millis(10), ttl), Ok(1));
        assert_eq!(state.await_quorum(1, 11, Duration::from_millis(10), ttl), Err(0));
        assert_eq!(state.await_quorum(2, 10, Duration::from_millis(10), ttl), Err(1));
        // Once the entry ages past the TTL it is a ghost: a restarted
        // follower's stale watermark must not satisfy a quorum.
        std::thread::sleep(Duration::from_millis(90));
        assert_eq!(state.await_quorum(1, 10, Duration::from_millis(10), ttl), Err(0));
    }

    #[test]
    fn a_follower_poll_wakes_a_waiting_quorum() {
        let state = Arc::new(ReplState::default());
        let ttl = Duration::from_secs(10);
        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.await_quorum(1, 7, Duration::from_secs(5), ttl))
        };
        std::thread::sleep(Duration::from_millis(50));
        state.note_follower("f", 7, 1, ttl);
        assert_eq!(waiter.join().unwrap(), Ok(1));
    }

    #[test]
    fn note_follower_expires_ghost_entries() {
        let state = ReplState::default();
        let ttl = Duration::from_millis(60);
        state.note_follower("old", 5, 2, ttl);
        std::thread::sleep(Duration::from_millis(90));
        // A new follower polling prunes the expired row.
        state.note_follower("new", 9, 0, ttl);
        let followers = state.followers.lock().unwrap();
        assert_eq!(followers.len(), 1);
        assert_eq!(followers[0].id, "new");
        assert_eq!(followers[0].acked_lsn, 9);
    }
}
