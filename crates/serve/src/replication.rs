//! Role-aware replication plumbing for the server: the leader's
//! replication listener and the follower's tail loop.
//!
//! The leader side is a second, dedicated listener (bound via
//! `lemp serve … replication=<addr>`) speaking the same hand-rolled
//! HTTP/1.1 as the query surface, with binary `lemp-store` replication
//! payloads as bodies:
//!
//! * `GET /repl/snapshot` → the `LEMPSNP1` bootstrap payload
//!   ([`lemp_store::replication::read_bootstrap`]).
//! * `GET /repl/wal?from=<lsn>&wait=<ms>&id=<follower>` → one `LEMPREP1`
//!   batch from the leader's on-disk log
//!   ([`lemp_store::replication::feed`]), long-polling up to `wait`
//!   milliseconds when the follower is caught up; `410 Gone` with
//!   `first_available` when compaction pruned past `from`.
//!
//! The follower side is one background thread that long-polls the leader
//! from the store's own watermark, applies each batch under the engine
//! write lock through [`DurableEngine::apply_replicated`] (the same
//! self-verifying replay crash recovery uses), and maintains the
//! `replication.lag_lsn` gauge. Because the request LSN is always re-read
//! from the store, the loop is idempotent across retries, leader restarts,
//! and follower restarts — it resumes from whatever is durable locally.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lemp_store::replication::{decode_batch, feed, read_bootstrap, Feed, MAX_BATCH_RECORDS};

use crate::json::{obj, Json};
use crate::{client, http, Shared};

// Role values for `ReplState::role`; `0` (the atomic's default) means no
// replication role.
/// Serving a replication listener for followers.
pub(crate) const ROLE_LEADER: u8 = 1;
/// Tail-following a leader (read-only until promoted).
pub(crate) const ROLE_FOLLOWER: u8 = 2;

/// How long one leader-side long poll lasts at most, and the cap a
/// follower may request.
const MAX_WAIT_MS: u64 = 10_000;

/// The follower's long-poll window per request.
const TAIL_WAIT_MS: u64 = 500;

/// Pause between leader-side polls of its own log during a long poll, and
/// the follower's retry backoff after an unreachable leader.
const POLL_SLEEP: Duration = Duration::from_millis(25);
const RETRY_BACKOFF: Duration = Duration::from_millis(200);

/// Per-follower progress, keyed by the follower-supplied `id`.
pub(crate) struct FollowerProgress {
    pub(crate) id: String,
    /// The follower's durable watermark as of its latest request — every
    /// record below it is applied *and* fsynced over there.
    pub(crate) acked_lsn: u64,
    pub(crate) batches: u64,
    pub(crate) records: u64,
}

/// Replication state hanging off [`Shared`] — all of it atomics or
/// mutexes, touched outside the engine lock except where noted.
#[derive(Default)]
pub(crate) struct ReplState {
    pub(crate) role: AtomicU8,
    /// Set under the engine write lock by `POST /promote`; the tail loop
    /// re-checks it under the same lock before applying, so no record
    /// lands after a promote response is sent.
    pub(crate) promoted: AtomicBool,
    /// leader's log end minus this follower's watermark, updated after
    /// every poll (0 when caught up; meaningful on followers only).
    pub(crate) lag: AtomicU64,
    /// The leader address a follower tails.
    pub(crate) leader: Mutex<String>,
    /// The leader's replication listener address (for the shutdown poke).
    pub(crate) listener_addr: Mutex<Option<SocketAddr>>,
    pub(crate) followers: Mutex<Vec<FollowerProgress>>,
    pub(crate) last_error: Mutex<Option<String>>,
}

impl ReplState {
    /// A follower refuses edits until promoted.
    pub(crate) fn is_read_only(&self) -> bool {
        self.role.load(Ordering::SeqCst) == ROLE_FOLLOWER && !self.promoted.load(Ordering::SeqCst)
    }

    fn record_error(&self, msg: String) {
        eprintln!("replication: {msg}");
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(msg);
    }

    /// The `/stats` `replication` object, or `None` when this server has
    /// no replication role.
    pub(crate) fn stats_json(&self) -> Option<Json> {
        let role = self.role.load(Ordering::SeqCst);
        let mut fields = vec![(
            "role",
            Json::Str(
                match role {
                    ROLE_LEADER => "leader",
                    ROLE_FOLLOWER => "follower",
                    _ => return None,
                }
                .into(),
            ),
        )];
        fields.push(("lag_lsn", Json::Num(self.lag.load(Ordering::SeqCst) as f64)));
        if role == ROLE_FOLLOWER {
            let leader = self.leader.lock().unwrap_or_else(|e| e.into_inner()).clone();
            fields.push(("leader", Json::Str(leader)));
            fields.push(("promoted", Json::Bool(self.promoted.load(Ordering::SeqCst))));
        }
        if role == ROLE_LEADER {
            let followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
            let rendered = followers
                .iter()
                .map(|f| {
                    obj(vec![
                        ("id", Json::Str(f.id.clone())),
                        ("acked_lsn", Json::Num(f.acked_lsn as f64)),
                        ("batches", Json::Num(f.batches as f64)),
                        ("records", Json::Num(f.records as f64)),
                    ])
                })
                .collect();
            fields.push(("followers", Json::Arr(rendered)));
        }
        if let Some(err) = self.last_error.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            fields.push(("last_error", Json::Str(err.clone())));
        }
        Some(obj(fields))
    }

    fn note_follower(&self, id: &str, acked_lsn: u64, records: u64) {
        let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
        match followers.iter_mut().find(|f| f.id == id) {
            Some(f) => {
                f.acked_lsn = acked_lsn;
                if records > 0 {
                    f.batches += 1;
                    f.records += records;
                }
            }
            None => followers.push(FollowerProgress {
                id: id.to_string(),
                acked_lsn,
                batches: u64::from(records > 0),
                records,
            }),
        }
    }
}

/// Binds the leader's replication listener and spawns its acceptor.
/// Requires a durable single-store backend (the log being replicated is
/// that store's).
pub(crate) fn start_leader(
    shared: &Arc<Shared>,
    addr: &str,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let dir =
        shared.read_engine().durable_store().map(|s| s.dir().to_path_buf()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replication requires a durable single-store backend (durable=<dir>, no shards)",
            )
        })?;
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    shared.repl.role.store(ROLE_LEADER, Ordering::SeqCst);
    *shared.repl.listener_addr.lock().unwrap_or_else(|e| e.into_inner()) = Some(bound);
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("lemp-repl-acceptor".to_string())
        .spawn(move || leader_loop(&listener, &shared, &dir))
        .expect("spawn replication acceptor");
    Ok((bound, handle))
}

fn leader_loop(listener: &TcpListener, shared: &Arc<Shared>, dir: &Path) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        let dir: PathBuf = dir.to_path_buf();
        // Thread per connection: follower counts are small, and a long
        // poll must not block the accept loop.
        let _ = std::thread::Builder::new()
            .name("lemp-repl-conn".to_string())
            .spawn(move || handle_repl_conn(stream, &shared, &dir));
    }
}

fn write_json(stream: &mut TcpStream, status: u16, body: &Json) {
    let _ = http::write_response(stream, status, &body.render());
}

fn write_json_error(stream: &mut TcpStream, status: u16, message: String) {
    write_json(stream, status, &obj(vec![("error", Json::Str(message))]));
}

fn handle_repl_conn(mut stream: TcpStream, shared: &Arc<Shared>, dir: &Path) {
    let _ = stream.set_read_timeout(shared.cfg.io_timeout);
    let _ = stream.set_write_timeout(shared.cfg.io_timeout);
    let _ = stream.set_nodelay(true);
    let request = match http::read_request(&mut stream, shared.cfg.max_body) {
        Ok(r) => r,
        Err(http::HttpError::Io(_)) => return,
        Err(http::HttpError::Bad { status, message }) => {
            return write_json_error(&mut stream, status, message);
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/repl/snapshot") => match read_bootstrap(dir) {
            Ok(bytes) => {
                let _ = http::write_response_bytes(
                    &mut stream,
                    200,
                    "application/octet-stream",
                    &bytes,
                );
            }
            Err(e) => write_json_error(&mut stream, 500, format!("snapshot feed failed: {e}")),
        },
        ("GET", "/repl/wal") => {
            let Some(from) = request.query_param("from").and_then(|v| v.parse::<u64>().ok()) else {
                return write_json_error(&mut stream, 400, "missing or bad from=<lsn>".into());
            };
            let wait_ms = request
                .query_param("wait")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                .min(MAX_WAIT_MS);
            let id = request.query_param("id").unwrap_or("anonymous").to_string();
            shared.repl.note_follower(&id, from, 0);
            let deadline = Instant::now() + Duration::from_millis(wait_ms);
            loop {
                match feed(dir, from, MAX_BATCH_RECORDS) {
                    Ok(Feed::Gap { first_available }) => {
                        return write_json(
                            &mut stream,
                            410,
                            &obj(vec![
                                (
                                    "error",
                                    Json::Str(format!(
                                        "LSN {from} was compacted away; re-bootstrap"
                                    )),
                                ),
                                ("first_available", Json::Num(first_available as f64)),
                            ]),
                        );
                    }
                    Ok(Feed::Batch { bytes, records, .. }) => {
                        let done = records > 0
                            || Instant::now() >= deadline
                            || shared.shutdown.load(Ordering::SeqCst);
                        if done {
                            shared.repl.note_follower(&id, from, records as u64);
                            let _ = http::write_response_bytes(
                                &mut stream,
                                200,
                                "application/octet-stream",
                                &bytes,
                            );
                            return;
                        }
                    }
                    Err(e) => {
                        // Transient (e.g. a segment pruned mid-read during
                        // compaction): the follower retries from its
                        // unchanged watermark.
                        return write_json_error(&mut stream, 500, format!("feed failed: {e}"));
                    }
                }
                std::thread::sleep(POLL_SLEEP);
            }
        }
        (_, path) => write_json_error(&mut stream, 404, format!("unknown path {path:?}")),
    }
}

/// Marks this server a follower of `leader` and spawns the tail loop.
/// Requires a durable single-store backend.
pub(crate) fn start_follower(
    shared: &Arc<Shared>,
    leader: String,
    follower_id: String,
) -> std::io::Result<JoinHandle<()>> {
    if shared.read_engine().durable_store().is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "replicate-from requires a durable single-store backend (durable=<dir>, no shards)",
        ));
    }
    shared.repl.role.store(ROLE_FOLLOWER, Ordering::SeqCst);
    *shared.repl.leader.lock().unwrap_or_else(|e| e.into_inner()) = leader.clone();
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("lemp-repl-tail".to_string())
        .spawn(move || follower_loop(&shared, &leader, &follower_id))
}

fn follower_loop(shared: &Arc<Shared>, leader: &str, follower_id: &str) {
    let mut backoff = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.repl.promoted.load(Ordering::SeqCst) {
            return;
        }
        if backoff {
            std::thread::sleep(RETRY_BACKOFF);
            backoff = false;
        }
        let from = match shared.read_engine().durable_store().map(|s| s.next_lsn()) {
            Some(lsn) => lsn,
            None => return,
        };
        let path = format!("/repl/wal?from={from}&wait={TAIL_WAIT_MS}&id={follower_id}");
        match client::request_bytes(leader, "GET", &path, Some(Duration::from_secs(30))) {
            Ok((200, bytes)) => match decode_batch(&bytes, from) {
                Ok(batch) => {
                    let mut failed = None;
                    let local_next;
                    {
                        let mut engine = shared.write_engine();
                        // Re-check under the lock: a promote that won the
                        // lock first must win outright.
                        if shared.repl.promoted.load(Ordering::SeqCst) {
                            return;
                        }
                        let Some(store) = engine.durable_store_mut() else { return };
                        for (lsn, record) in &batch.records {
                            if let Err(e) = store.apply_replicated(*lsn, record) {
                                failed = Some(format!("apply at LSN {lsn} failed: {e}"));
                                break;
                            }
                        }
                        local_next = store.next_lsn();
                        if local_next > from {
                            // Invalidate cached query plans like any edit.
                            shared.edits.fetch_add(1, Ordering::Release);
                        }
                    }
                    shared
                        .repl
                        .lag
                        .store(batch.leader_next_lsn.saturating_sub(local_next), Ordering::SeqCst);
                    if let Some(msg) = failed {
                        // The leader's log contradicts this store: keep
                        // serving reads, stop tailing (a structured halt,
                        // visible in /stats replication.last_error).
                        shared.repl.record_error(msg);
                        return;
                    }
                }
                Err(e) => {
                    // A truncated or corrupt response; the watermark is
                    // unchanged, so retrying is idempotent.
                    shared.repl.record_error(format!("bad batch from {leader}: {e}"));
                    backoff = true;
                }
            },
            Ok((410, _)) => {
                shared.repl.record_error(format!(
                    "leader {leader} compacted past LSN {from}; re-bootstrap this follower"
                ));
                return;
            }
            Ok((status, _)) => {
                shared.repl.record_error(format!("leader {leader} answered {status}"));
                backoff = true;
            }
            Err(e) => {
                // Leader unreachable (crashed, network blip): keep
                // retrying — the operator decides whether to promote.
                shared.repl.record_error(format!("leader {leader} unreachable: {e}"));
                backoff = true;
            }
        }
    }
}

/// `POST /promote`: a follower stops tailing and starts accepting edits.
/// Idempotent — promoting an already-promoted follower reports the same
/// shape again.
pub(crate) fn handle_promote(mut stream: TcpStream, shared: &Shared) {
    if shared.repl.role.load(Ordering::SeqCst) != ROLE_FOLLOWER {
        return write_json_error(
            &mut stream,
            409,
            "promote applies to a replicating follower".into(),
        );
    }
    let (next_lsn, probes) = {
        let engine = shared.write_engine();
        // Under the write lock: the tail loop applies batches under this
        // lock and re-checks `promoted` inside it, so once we release, no
        // replicated record can land after the promote is acknowledged.
        shared.repl.promoted.store(true, Ordering::SeqCst);
        let next = engine.durable_store().map_or(0, |s| s.next_lsn());
        (next, engine.len())
    };
    write_json(
        &mut stream,
        200,
        &obj(vec![
            ("promoted", Json::Bool(true)),
            ("next_lsn", Json::Num(next_lsn as f64)),
            ("probes", Json::Num(probes as f64)),
        ]),
    );
}
