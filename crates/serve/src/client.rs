//! A tiny blocking HTTP/1.1 JSON client — enough for `loadgen`, the
//! integration tests, and smoke scripts to drive the server over real
//! sockets without external dependencies.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;

/// One request/response exchange (a fresh connection per call, matching
/// the server's `Connection: close` policy). Returns the status code and
/// the parsed JSON body (`Json::Null` for an empty body).
///
/// # Errors
/// Socket failures, malformed responses, and JSON parse errors (as
/// [`io::ErrorKind::InvalidData`]).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: Option<Duration>,
) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.set_nodelay(true)?;
    let payload = body.map(Json::render).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: lemp\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// One request/response exchange returning the raw body bytes — for the
/// binary replication payloads, which are not JSON.
///
/// # Errors
/// Socket failures and malformed responses (as
/// [`io::ErrorKind::InvalidData`]).
pub fn request_bytes(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    timeout: Option<Duration>,
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.set_nodelay(true)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: lemp\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("no header/body separator in response"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

/// Splits a raw HTTP response into status code and parsed JSON body.
fn parse_response(raw: &[u8]) -> io::Result<(u16, Json)> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("no header/body separator in response"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let body = &raw[head_end + 4..];
    let json = if body.is_empty() {
        Json::Null
    } else {
        let text = std::str::from_utf8(body).map_err(|_| invalid("non-UTF-8 response body"))?;
        Json::parse(text).map_err(|e| invalid(&format!("bad JSON body: {e}")))?
    };
    Ok((status, json))
}

/// `GET` convenience wrapper around [`request`].
///
/// # Errors
/// Same conditions as [`request`].
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, Json)> {
    request(addr, "GET", path, None, Some(Duration::from_secs(10)))
}

/// `POST` convenience wrapper around [`request`].
///
/// # Errors
/// Same conditions as [`request`].
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    request(addr, "POST", path, Some(body), Some(Duration::from_secs(10)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\n{\"a\": 1}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("a").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn empty_body_is_null() {
        let (status, body) = parse_response(b"HTTP/1.1 503 Nope\r\nX: y\r\n\r\n").unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n{}").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n\r\nnot json").is_err());
    }
}
