//! `lemp-serve` — a concurrent query service over one shared LEMP engine.
//!
//! The LEMP retrieval phase is embarrassingly parallel across queries
//! (the paper runs single-threaded only as an experimental control,
//! Sec. 6), and after [`DynamicLemp::warm`] the hot path needs only
//! `&self`. This crate turns that into a service: one warmed engine behind
//! an `RwLock` whose read side is taken by query workers and whose write
//! side is taken only by probe edits, a fixed worker-thread pool, a
//! **bounded accept queue** that sheds overload with `503` instead of
//! stalling, and **micro-batching** — a worker that wakes up drains
//! compatible queued query requests and answers them with a *single*
//! engine call, amortizing per-call batch preprocessing.
//!
//! Everything is `std`-only: HTTP/1.1 and JSON are hand-rolled (see
//! [`http`] and [`json`]) because the build environment has no crates.io
//! access — the same constraint behind the workspace's `vendor/` stand-ins.
//!
//! # Endpoints
//!
//! | method & path | body | response |
//! |---|---|---|
//! | `POST /top-k` | `{"queries": [[f64; dim], …], "k": n, "floor"?: f}` | `{"lists": [[{"id", "score"}, …], …]}` |
//! | `POST /above-theta` | `{"queries": [[f64; dim], …], "theta": f}` | `{"entries": [{"query", "probe", "value"}, …], "count": n}` |
//! | `POST /probes` | `{"insert"?: [[f64; dim], …], "remove"?: [id, …]}` | `{"inserted": [id, …], "shards": [s, …], "removed": [bool, …], "probes": n}` |
//! | `GET /healthz` | — | `{"ok": true, "probes": n, "dim": d, "warm": true}` |
//! | `GET /stats` | — | `{"uptime_seconds": s, "counters": {…}, "engine": {…}}` |
//! | `GET /metrics` | — | Prometheus text exposition (`text/plain; version=0.0.4`) |
//! | `POST /promote` | — | `{"promoted": true, "fence_epoch": e, "next_lsn": l, "probes": n}` (followers only; `409 {"code": "already_fenced"}` on a second promote) |
//!
//! `query` indices in `/above-theta` responses are row indices *within the
//! request*; `id`/`probe` are the engine's stable probe ids. `POST
//! /probes` works against **every** backend — single or sharded, volatile
//! or durable; the response's `shards` array reports the shard each insert
//! was routed to (always `0` on a single engine), so load generators can
//! observe the placement distribution. Errors come back as
//! `{"error": "message"}` with a 4xx/5xx status. When the accept queue is
//! full the server answers `503 {"error": "overloaded"}` immediately —
//! load shedding, never head-of-line blocking.
//!
//! # Durable mode
//!
//! With a [`DurableEngine`] backend (`lemp serve … durable=<dir>`) every
//! `POST /probes` edit is appended to the store's `LEMPWAL1` write-ahead
//! log **before** it mutates the engine, under the same write lock — a
//! SIGKILLed server recovers its full probe set with `lemp recover <dir>`
//! ([`lemp_store::recover`]). `/stats` then carries a `wal` object
//! (`records_appended`/`records_durable`/`bytes_appended`/`fsyncs`/
//! `segments_created`/`active_segment_bytes`) and `engine.durable: true`.
//!
//! Durability composes with sharding: a [`ShardedDurableEngine`] backend
//! (`lemp serve … shards=N durable=<dir>`) routes each edit to the owning
//! shard's log-then-apply path ([`lemp_store::recover_sharded`] reassembles
//! the full engine after a crash). `/stats` then reports the live
//! per-shard probe counts (`engine.shard_probes`), the aggregate `wal`
//! object, and a per-shard `wal_shards` array.
//!
//! # Replication
//!
//! A durable single-store server can be a replication **leader**
//! ([`Server::enable_leader`]): a second listener streams its checkpoint
//! snapshot and WAL batches (the `lemp-store` `LEMPSNP2`/`LEMPREP2` wire
//! framing — see [`lemp_store::replication`]) to followers via
//! `GET /repl/snapshot` and long-polled `GET /repl/wal?from=<lsn>`.
//! A **follower** ([`Server::replicate_from`]) tail-follows a leader from
//! its own durable watermark, applying records under the engine write
//! lock through the same self-verifying replay crash recovery uses; it
//! serves reads through the unchanged `&self` query path, answers `409`
//! to `POST /probes`, and `POST /promote` fences the store with a fresh
//! epoch and flips it read-write (the tail loop stops before the promote
//! is acknowledged, and the fencing epoch shuts the old leader out of
//! every replication path). `/stats` carries a `replication` object:
//! `role`, `lag_lsn`, `fence_epoch`, `leader`/`promoted` on a follower,
//! per-follower progress counters on a leader.
//!
//! With [`ServeConfig::sync_replicas]` set to `n > 0`, acknowledgments
//! turn **semi-synchronous**: a leader holds each `POST /probes` response
//! until `n` followers' durable watermarks cover the edit's last LSN
//! (their long-poll `from` *is* the ack), bounded by
//! [`ServeConfig::quorum_timeout`]. On timeout the server answers a
//! structured `503` with `code: "quorum_timeout"` — the edit **is**
//! durable locally and stays queued for followers; the client learns
//! replication lagged, not that data was lost.
//!
//! # Observability: `/stats` vs `/metrics`
//!
//! The two read-only introspection endpoints carry the same counters but
//! serve different consumers, and the split is a contract:
//!
//! * `GET /stats` is the **JSON snapshot for humans and test harnesses** —
//!   nested objects (`counters`, `engine`, `wal`, `replication`), natural
//!   names, exact shapes asserted by the e2e suite. Its schema may grow
//!   fields but existing ones keep their meaning.
//! * `GET /metrics` is the **Prometheus text exposition for scrapers**
//!   (see [`metrics`]): flat `lemp_*` families with `# HELP`/`# TYPE`
//!   headers, per-endpoint latency/body-size histograms, engine query
//!   telemetry fed through [`lemp_core::TelemetrySink`] (candidates,
//!   pruned pairs, per-algorithm method mix incl. QUANT, plan-cache
//!   hits/misses/refreshes), and scrape-time gauges (uptime, memory
//!   residency, WAL watermarks, replication role/lag/followers). Metric
//!   names and label sets are append-only: dashboards must never break on
//!   an upgrade.
//!
//! Anything exposed by `/metrics` as a point-in-time gauge is derived from
//! the same sources `/stats` reads (and both share the edit-keyed shape
//! cache), so the two views never disagree about the engine. With
//! `slow-query-ms=<n>` (`ServeConfig::slow_query`) the server additionally
//! emits one structured JSON line to stderr for every query request at or
//! above the threshold — kind, parameters, batch fold, latency, and the
//! run's [`lemp_core::RunStats`] — so tail-latency offenders are
//! attributable without a debugger.
//!
//! # Query dispatch
//!
//! Every query request is parsed into a [`lemp_core::QueryRequest`] and
//! answered through the [`Engine`] trait (`plan` → `execute`): the server
//! contains **no per-engine query dispatch** — pointing it at a different
//! [`Engine`] backend requires no handler changes. Micro-batching
//! coalesces queued requests whose `QueryRequest`s are equal into one
//! engine call.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
mod replication;
pub mod stats;

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lemp_core::{
    DynamicLemp, Engine, QueryKind, QueryPlan, QueryRequest, QueryRows, RunStats, Scratch,
    ShardedLemp, WarmGoal,
};
use lemp_linalg::VectorStore;
use lemp_store::{DurableEngine, ShardedDurableEngine, StoreError, WalStats};

use http::{HttpError, Request};
use json::{obj, Json};
use stats::ServerStats;

/// Tuning knobs of one server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads answering requests. `0` is allowed (nothing drains
    /// the queue — only useful in shedding tests).
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this the acceptor
    /// sheds with `503`.
    pub queue_cap: usize,
    /// Most query requests folded into one engine call per worker wakeup.
    pub batch_max: usize,
    /// Per-socket read *and* write timeout (a client that stalls sending
    /// its request or draining its response cannot pin a worker).
    pub io_timeout: Option<Duration>,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Followers whose durable watermark must cover an edit before the
    /// leader acknowledges it (`0` = asynchronous, the default). Only
    /// meaningful on a replication leader.
    pub sync_replicas: usize,
    /// How long a `POST /probes` response may wait for the
    /// `sync_replicas` quorum before answering `503 quorum_timeout`.
    pub quorum_timeout: Duration,
    /// A follower that has not polled within this window is expired from
    /// the progress table: its stale watermark can neither satisfy nor
    /// block a quorum, and `/stats` stops listing it.
    pub follower_ttl: Duration,
    /// Slow-query threshold (`slow-query-ms=<n>` on the CLI): a query
    /// request whose wall latency reaches it is logged as one structured
    /// JSON line on stderr — kind, parameters, batch fold, latency, and
    /// its [`RunStats`]. `None` (the default) disables the log.
    pub slow_query: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: 64,
            batch_max: 8,
            io_timeout: Some(Duration::from_secs(5)),
            max_body: 16 << 20,
            sync_replicas: 0,
            quorum_timeout: Duration::from_secs(2),
            follower_ttl: Duration::from_secs(10),
            slow_query: None,
        }
    }
}

/// The bounded accept queue: `try_push` never blocks (overflow = shed).
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues, or hands the stream back when full/closed (shed it).
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.cap {
            return Err(stream);
        }
        state.items.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop (micro-batching drains opportunistically).
    fn try_pop(&self) -> Option<TcpStream> {
        self.lock().items.pop_front()
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// The engine behind a server: sharding and durability compose freely —
/// every variant takes probe edits through `POST /probes`. **All query
/// traffic flows through the [`Engine`] trait**
/// ([`ServeEngine::as_engine`]) — the variants exist only for the *edit*
/// path (`POST /probes`) and the `/stats` shard map; the handlers never
/// match on the engine kind to answer a query.
pub enum ServeEngine {
    /// One [`DynamicLemp`] — the PR-2 serving mode, `POST /probes` works
    /// but edits live only in memory.
    Dynamic(DynamicLemp),
    /// A [`DurableEngine`] — like `Dynamic`, but every probe edit is
    /// appended to the store's write-ahead log *before* it is applied
    /// (under the engine write lock), so a crashed server recovers its
    /// probe set with `lemp recover`/[`lemp_store::recover`]. `/stats`
    /// additionally reports the WAL counters.
    Durable(Box<DurableEngine>),
    /// A [`ShardedLemp`] — shard-parallel queries; probe edits are routed
    /// to the owning shard ([`ShardedLemp::insert`]/
    /// [`ShardedLemp::owner_of`]) but live only in memory.
    Sharded(ShardedLemp),
    /// A [`ShardedDurableEngine`] — shard-parallel queries *and* durable
    /// routed edits: each edit is appended to the owning shard's
    /// write-ahead log before it is applied, so a crashed server recovers
    /// every shard with `lemp recover`/[`lemp_store::recover_sharded`].
    ShardedDurable(Box<ShardedDurableEngine>),
}

impl From<DynamicLemp> for ServeEngine {
    fn from(engine: DynamicLemp) -> Self {
        ServeEngine::Dynamic(engine)
    }
}

impl From<DurableEngine> for ServeEngine {
    fn from(engine: DurableEngine) -> Self {
        ServeEngine::Durable(Box::new(engine))
    }
}

impl From<ShardedLemp> for ServeEngine {
    fn from(engine: ShardedLemp) -> Self {
        ServeEngine::Sharded(engine)
    }
}

impl From<ShardedDurableEngine> for ServeEngine {
    fn from(engine: ShardedDurableEngine) -> Self {
        ServeEngine::ShardedDurable(Box::new(engine))
    }
}

impl ServeEngine {
    /// The unified query handle: every request is planned and executed
    /// through this trait object, whatever the backend.
    pub fn as_engine(&self) -> &dyn Engine {
        match self {
            ServeEngine::Dynamic(e) => e,
            ServeEngine::Durable(e) => e.as_ref(),
            ServeEngine::Sharded(e) => e,
            ServeEngine::ShardedDurable(e) => e.as_ref(),
        }
    }

    /// Live probe count.
    pub fn len(&self) -> usize {
        self.as_engine().probes()
    }

    /// `true` if no probes are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.as_engine().dim()
    }

    /// Whether the engine is warm (the shared query path is usable).
    pub fn is_warm(&self) -> bool {
        self.as_engine().is_warm()
    }

    /// Total bucket count (summed across shards when sharded).
    pub fn bucket_count(&self) -> usize {
        match self {
            ServeEngine::Dynamic(e) => e.bucket_count(),
            ServeEngine::Durable(e) => e.engine().bucket_count(),
            ServeEngine::Sharded(e) => e.bucket_count(),
            ServeEngine::ShardedDurable(e) => e.engine().bucket_count(),
        }
    }

    /// Whether edits are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        matches!(self, ServeEngine::Durable(_) | ServeEngine::ShardedDurable(_))
    }

    /// The durable single-store backend, when that is what serves —
    /// replication works against exactly this shape (one store, one log).
    pub fn durable_store(&self) -> Option<&DurableEngine> {
        match self {
            ServeEngine::Durable(e) => Some(e),
            _ => None,
        }
    }

    fn durable_store_mut(&mut self) -> Option<&mut DurableEngine> {
        match self {
            ServeEngine::Durable(e) => Some(e),
            _ => None,
        }
    }

    /// WAL counters when the backend is durable (summed across shards for
    /// a sharded store), `None` otherwise.
    pub fn wal_stats(&self) -> Option<WalStats> {
        match self {
            ServeEngine::Durable(e) => Some(e.wal_stats()),
            ServeEngine::ShardedDurable(e) => {
                Some(e.wal_stats().into_iter().fold(WalStats::default(), |mut sum, s| {
                    sum.records_appended += s.records_appended;
                    sum.records_durable += s.records_durable;
                    sum.bytes_appended += s.bytes_appended;
                    sum.fsyncs += s.fsyncs;
                    sum.segments_created += s.segments_created;
                    sum.active_segment_bytes += s.active_segment_bytes;
                    sum
                }))
            }
            _ => None,
        }
    }

    /// Per-shard WAL counters when the backend is sharded *and* durable,
    /// `None` otherwise.
    pub fn shard_wal_stats(&self) -> Option<Vec<WalStats>> {
        match self {
            ServeEngine::ShardedDurable(e) => Some(e.wal_stats()),
            _ => None,
        }
    }

    /// Number of shards (1 for the dynamic engine).
    pub fn shard_count(&self) -> usize {
        self.as_engine().shard_count()
    }

    /// Live probe count per shard (a one-element vector for the dynamic
    /// engine) — the `/stats` shard map. Computed from the engine on every
    /// call, so routed edits show up immediately.
    pub fn shard_sizes(&self) -> Vec<usize> {
        match self {
            ServeEngine::Dynamic(e) => vec![e.len()],
            ServeEngine::Durable(e) => vec![e.engine().len()],
            ServeEngine::Sharded(e) => e.shard_sizes(),
            ServeEngine::ShardedDurable(e) => e.engine().shard_sizes(),
        }
    }

    /// Probe residency per shard (a one-element vector for the dynamic
    /// engine): full-precision direction bytes vs quantized code+codebook
    /// bytes — the `/stats` `engine.memory` map.
    pub fn memory_usage(&self) -> Vec<lemp_core::MemoryUsage> {
        match self {
            ServeEngine::Dynamic(e) => vec![e.memory_usage()],
            ServeEngine::Durable(e) => vec![e.engine().memory_usage()],
            ServeEngine::Sharded(e) => e.memory_usage(),
            ServeEngine::ShardedDurable(e) => e.engine().memory_usage(),
        }
    }

    /// Warms an engine that arrived cold, on a strided self-sample of its
    /// own probe vectors (covers the length spectrum either way).
    fn warm_on_self_sample(&mut self) {
        // live_vectors() returns ascending ids, whose lengths are
        // arbitrary, so a strided subset samples the length spectrum
        // rather than one end of it.
        let strided = |live: &VectorStore| {
            let rows = live.len().min(256);
            let stride = (live.len() / rows.max(1)).max(1);
            let picks: Vec<usize> = (0..rows).map(|i| i * stride).collect();
            live.select(&picks)
        };
        match self {
            ServeEngine::Dynamic(engine) => {
                let (_, live) = engine.live_vectors();
                engine.warm(&strided(&live), WarmGoal::TopK(10));
            }
            ServeEngine::Durable(engine) => {
                let (_, live) = engine.engine().live_vectors();
                engine.warm(&strided(&live), WarmGoal::TopK(10));
            }
            ServeEngine::Sharded(engine) => {
                let sample = engine.sample_vectors(256);
                engine.warm(&sample, WarmGoal::TopK(10));
            }
            ServeEngine::ShardedDurable(engine) => {
                let sample = engine.engine().sample_vectors(256);
                engine.warm(&sample, WarmGoal::TopK(10));
            }
        }
    }
}

/// State shared by the acceptor and every worker.
struct Shared {
    engine: RwLock<ServeEngine>,
    /// Vector dimensionality (immutable for the engine's lifetime; lets
    /// request validation run without touching the lock).
    dim: usize,
    stats: ServerStats,
    /// The `/metrics` registry: latency/body histograms, plan-cache and
    /// engine-telemetry counters (the engine reports into it through
    /// [`lemp_core::TelemetrySink`]).
    metrics: metrics::Metrics,
    /// Server start time (`uptime_seconds` in `/stats` and `/metrics`).
    start: Instant,
    queue: ConnQueue,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    /// Bumped (under the engine write lock) by every applied probe edit;
    /// workers key their cached query plans on it, so a cached plan is
    /// reused only while the engine it was compiled from is unchanged.
    edits: AtomicU64,
    /// The engine-shape cache behind `/stats` and `/metrics`, keyed on
    /// [`Shared::edits`] exactly like the worker plan caches: per-shard
    /// probe counts and memory residency walk every shard, so they are
    /// recomputed only after an edit actually changed the engine.
    shape: Mutex<Option<ShapeCache>>,
    /// Replication role and progress (inert unless this server is a
    /// leader or follower).
    repl: replication::ReplState,
}

/// One cached engine shape (see [`Shared::shape`]).
struct ShapeCache {
    edits: u64,
    shard_sizes: Vec<usize>,
    memory: Vec<lemp_core::MemoryUsage>,
}

impl Shared {
    fn read_engine(&self) -> std::sync::RwLockReadGuard<'_, ServeEngine> {
        self.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine(&self) -> std::sync::RwLockWriteGuard<'_, ServeEngine> {
        self.engine.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Per-shard probe counts and memory residency, served from the
    /// edit-keyed cache. The caller holds the engine read lock (`engine`
    /// is borrowed from its guard), so the edit counter it reads is
    /// consistent with the engine state: edits bump the counter under the
    /// write lock, and a cached shape is reused only while no edit has
    /// been applied since it was computed.
    fn engine_shape(&self, engine: &ServeEngine) -> (Vec<usize>, Vec<lemp_core::MemoryUsage>) {
        let edits = self.edits.load(Ordering::Acquire);
        let mut cache = self.shape.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cached) = cache.as_ref() {
            if cached.edits == edits {
                return (cached.shard_sizes.clone(), cached.memory.clone());
            }
        }
        let shard_sizes = engine.shard_sizes();
        let memory = engine.memory_usage();
        *cache =
            Some(ShapeCache { edits, shard_sizes: shard_sizes.clone(), memory: memory.clone() });
        (shard_sizes, memory)
    }
}

/// A bound-but-not-yet-serving server (inspect [`Server::local_addr`],
/// then [`Server::start`] or [`Server::run`]).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    /// The replication acceptor (leader) or tail loop (follower), when a
    /// role was configured before [`Server::start`].
    repl_threads: Vec<JoinHandle<()>>,
}

/// Handle to a running server: address, shutdown, join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    repl_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) over the given
    /// engine — a [`DynamicLemp`], a [`ShardedLemp`], or a prebuilt
    /// [`ServeEngine`]. An engine that is not yet warm is warmed here with
    /// a sample of its own probe vectors — a service must never run the
    /// lazy `&mut` path, so warmth is an invariant from the first request
    /// on.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: impl Into<ServeEngine>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let mut engine = engine.into();
        if !engine.is_warm() {
            engine.warm_on_self_sample();
        }
        let listener = TcpListener::bind(addr)?;
        let dim = engine.dim();
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            dim,
            stats: ServerStats::default(),
            metrics: metrics::Metrics::default(),
            start: Instant::now(),
            queue: ConnQueue::new(cfg.queue_cap.max(1)),
            cfg,
            shutdown: AtomicBool::new(false),
            edits: AtomicU64::new(0),
            shape: Mutex::new(None),
            repl: replication::ReplState::default(),
        });
        Ok(Server { listener, shared, repl_threads: Vec::new() })
    }

    /// Makes this server a replication **leader**: binds a second
    /// listener on `addr` (port `0` for ephemeral) that streams the
    /// durable store's checkpoint snapshot and WAL batches to followers.
    /// Returns the bound replication address.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] unless the backend is a durable
    /// single store; socket errors from the bind.
    pub fn enable_leader(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let (bound, handle) = replication::start_leader(&self.shared, addr)?;
        self.repl_threads.push(handle);
        Ok(bound)
    }

    /// Makes this server a replication **follower** of the leader's
    /// replication listener at `leader`: spawns the tail loop, which
    /// long-polls from the store's durable watermark and applies batches
    /// under the engine write lock. The server answers `409` to
    /// `POST /probes` until `POST /promote`.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] unless the backend is a durable
    /// single store.
    pub fn replicate_from(&mut self, leader: String) -> io::Result<()> {
        let id = self
            .listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| format!("pid-{}", std::process::id()));
        let handle = replication::start_follower(&self.shared, leader, id)?;
        self.repl_threads.push(handle);
        Ok(())
    }

    /// The bound address (with the real port when `0` was requested).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the worker pool and the acceptor thread; returns immediately.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let workers: Vec<JoinHandle<()>> = (0..self.shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("lemp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("lemp-serve-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor");
        Ok(ServerHandle {
            addr,
            shared: self.shared,
            acceptor,
            workers,
            repl_threads: self.repl_threads,
        })
    }

    /// Serves until the process dies (the CLI entry point).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn run(self) -> io::Result<()> {
        self.start()?.join();
        Ok(())
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server threads exit — effectively forever, since
    /// only [`ServerHandle::shutdown`] stops them (the CLI's serve loop).
    pub fn join(self) {
        self.acceptor.join().ok();
        for w in self.workers {
            w.join().ok();
        }
        for t in self.repl_threads {
            t.join().ok();
        }
    }

    /// Stops accepting, drains the queue, and joins all threads (the
    /// replication acceptor or tail loop included). Queued but unanswered
    /// connections are dropped (clients see EOF).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Same for the replication acceptor, when one is listening.
        if let Some(addr) =
            *self.shared.repl.listener_addr.lock().unwrap_or_else(|e| e.into_inner())
        {
            let _ = TcpStream::connect(addr);
        }
        self.shared.queue.close();
        self.acceptor.join().ok();
        for w in self.workers {
            w.join().ok();
        }
        for t in self.repl_threads {
            t.join().ok();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if let Err(mut stream) = shared.queue.try_push(stream) {
            // Bounded queue full: shed immediately instead of stalling.
            ServerStats::bump(&shared.stats.shed);
            let _ = stream.set_write_timeout(shared.cfg.io_timeout);
            let body = obj(vec![("error", Json::Str("overloaded".into()))]).render();
            let _ = http::write_response(&mut stream, 503, &body);
        }
    }
}

/// Per-worker query state: the engine scratch plus a one-slot plan cache.
/// Serving traffic is typically homogeneous (the same `QueryRequest` over
/// and over), so caching the last compiled plan removes the per-request
/// planning allocation from the hot path; the cache is keyed on the
/// request *and* the edit counter, so probe edits invalidate it before a
/// stale plan could ever reach `execute`.
struct WorkerState {
    scratch: Scratch,
    plan: Option<(QueryRequest, u64, QueryPlan)>,
}

fn worker_loop(shared: &Shared) {
    let mut worker =
        WorkerState { scratch: shared.read_engine().as_engine().query_scratch(), plan: None };
    while let Some(stream) = shared.queue.pop() {
        // Contain panics (engine asserts on pathological inputs, future
        // bugs): one bad request must cost one connection, not a worker.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(stream, shared, &mut worker, true);
        }));
        if outcome.is_err() {
            ServerStats::bump(&shared.stats.server_errors);
        }
    }
}

/// One parsed query request awaiting its batched engine call.
struct QueryJob {
    stream: TcpStream,
    rows: usize,
}

fn respond(mut stream: TcpStream, status: u16, body: &Json) {
    let _ = http::write_response(&mut stream, status, &body.render());
}

fn respond_error(shared: &Shared, stream: TcpStream, status: u16, message: String) {
    if status >= 500 {
        ServerStats::bump(&shared.stats.server_errors);
    } else {
        ServerStats::bump(&shared.stats.client_errors);
    }
    respond(stream, status, &obj(vec![("error", Json::Str(message))]));
}

fn respond_http_error(shared: &Shared, stream: TcpStream, err: HttpError) {
    match err {
        // Socket-level failure (e.g. read timeout): nothing to say to the
        // peer reliably; drop the connection.
        HttpError::Io(_) => ServerStats::bump(&shared.stats.client_errors),
        HttpError::Bad { status, message } => respond_error(shared, stream, status, message),
    }
}

/// Reads, routes and answers one connection. `allow_batch` is true only
/// for the queue wakeup path — requests drained *during* batching are
/// handled here with `allow_batch = false` so batching never recurses.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    worker: &mut WorkerState,
    allow_batch: bool,
) {
    let _ = stream.set_read_timeout(shared.cfg.io_timeout);
    let _ = stream.set_write_timeout(shared.cfg.io_timeout);
    let _ = stream.set_nodelay(true);
    let request = match http::read_request(&mut stream, shared.cfg.max_body) {
        Ok(r) => r,
        Err(e) => return respond_http_error(shared, stream, e),
    };
    ServerStats::bump(&shared.stats.requests);
    dispatch(stream, request, shared, worker, allow_batch);
}

fn dispatch(
    stream: TcpStream,
    request: Request,
    shared: &Shared,
    worker: &mut WorkerState,
    allow_batch: bool,
) {
    // Every routed request is observed into the per-endpoint latency and
    // body-size histograms — including the incompatible drained requests
    // that `handle_query` hands back through a recursive dispatch.
    // Requests *joined* into a batch never come back here; `handle_query`
    // observes those itself, so `_count{path="/top-k"}` equals the number
    // of requests clients sent, not the number of engine calls.
    let start = Instant::now();
    let endpoint = metrics::Endpoint::of(&request.path);
    let body_len = request.body.len();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let engine = shared.read_engine();
            let body = obj(vec![
                ("ok", Json::Bool(true)),
                ("probes", Json::Num(engine.len() as f64)),
                ("dim", Json::Num(engine.dim() as f64)),
                ("warm", Json::Bool(engine.is_warm())),
            ]);
            drop(engine);
            respond(stream, 200, &body);
        }
        ("GET", "/stats") => {
            let engine = shared.read_engine();
            // Per-shard probe counts and memory residency walk every shard;
            // both come from the edit-keyed shape cache so an idle server
            // computes them once, not per scrape.
            let (shard_sizes, usage) = shared.engine_shape(&engine);
            let shard_probes: Vec<Json> =
                shard_sizes.into_iter().map(|n| Json::Num(n as f64)).collect();
            // Probe residency: full-precision direction bytes vs quantized
            // code+codebook bytes, totalled and per shard — how much memory
            // the probe representation costs and how much quantization
            // saves on each shard.
            let render_usage = |u: &lemp_core::MemoryUsage| {
                obj(vec![
                    ("full_bytes", Json::Num(u.full_bytes as f64)),
                    ("quantized_bytes", Json::Num(u.quantized_bytes as f64)),
                ])
            };
            let memory = obj(vec![
                ("full_bytes", Json::Num(usage.iter().map(|u| u.full_bytes).sum::<u64>() as f64)),
                (
                    "quantized_bytes",
                    Json::Num(usage.iter().map(|u| u.quantized_bytes).sum::<u64>() as f64),
                ),
                ("shards", Json::Arr(usage.iter().map(render_usage).collect())),
            ]);
            let engine_info = obj(vec![
                ("probes", Json::Num(engine.len() as f64)),
                ("buckets", Json::Num(engine.bucket_count() as f64)),
                ("dim", Json::Num(engine.dim() as f64)),
                ("warm", Json::Bool(engine.is_warm())),
                ("shards", Json::Num(engine.shard_count() as f64)),
                ("shard_probes", Json::Arr(shard_probes)),
                ("memory", memory),
                ("durable", Json::Bool(engine.is_durable())),
            ]);
            let wal = engine.wal_stats();
            let wal_shards = engine.shard_wal_stats();
            let fence_epoch = engine.durable_store().map(|s| s.fence_epoch());
            drop(engine);
            let render_wal = |wal: &WalStats| {
                obj(vec![
                    ("records_appended", Json::Num(wal.records_appended as f64)),
                    ("records_durable", Json::Num(wal.records_durable as f64)),
                    ("bytes_appended", Json::Num(wal.bytes_appended as f64)),
                    ("fsyncs", Json::Num(wal.fsyncs as f64)),
                    ("segments_created", Json::Num(wal.segments_created as f64)),
                    ("active_segment_bytes", Json::Num(wal.active_segment_bytes as f64)),
                ])
            };
            let mut fields = vec![
                ("uptime_seconds", Json::Num(shared.start.elapsed().as_secs_f64())),
                ("counters", shared.stats.snapshot()),
                ("engine", engine_info),
            ];
            if let Some(replication) = shared.repl.stats_json(shared.cfg.follower_ttl, fence_epoch)
            {
                fields.push(("replication", replication));
            }
            if let Some(wal) = wal {
                // The durability counters: how much log exists, how much of
                // it is fsync-durable, and what the fsync cadence costs —
                // summed across shards for a sharded store.
                fields.push(("wal", render_wal(&wal)));
            }
            if let Some(shards) = wal_shards {
                fields.push(("wal_shards", Json::Arr(shards.iter().map(render_wal).collect())));
            }
            respond(stream, 200, &obj(fields));
        }
        ("GET", "/metrics") => {
            // Cumulative series live in the registry; point-in-time gauges
            // are sampled here under the read lock and rendered together.
            let engine = shared.read_engine();
            let (_, usage) = shared.engine_shape(&engine);
            let gauges = metrics::ScrapeGauges {
                uptime_seconds: shared.start.elapsed().as_secs_f64(),
                probes: engine.len() as u64,
                buckets: engine.bucket_count() as u64,
                shards: engine.shard_count() as u64,
                memory_full_bytes: usage.iter().map(|u| u.full_bytes).sum(),
                memory_quantized_bytes: usage.iter().map(|u| u.quantized_bytes).sum(),
                wal: engine.wal_stats(),
                replication: shared.repl.gauges(
                    shared.cfg.follower_ttl,
                    engine.durable_store().map(|s| s.fence_epoch()),
                ),
            };
            drop(engine);
            let text = shared.metrics.render(&shared.stats, &gauges);
            let mut stream = stream;
            let _ = http::write_response_bytes(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
            );
        }
        ("POST", "/probes") => {
            if shared.repl.is_read_only() {
                let leader = shared.repl.leader.lock().unwrap_or_else(|e| e.into_inner()).clone();
                respond_error(
                    shared,
                    stream,
                    409,
                    format!(
                        "read-only follower replicating from {leader}; POST /promote to accept edits"
                    ),
                );
            } else {
                handle_probes(stream, &request, shared);
            }
        }
        ("POST", "/promote") => replication::handle_promote(stream, shared),
        ("POST", "/top-k") | ("POST", "/above-theta") => {
            handle_query(stream, request, shared, worker, allow_batch)
        }
        (
            _,
            "/healthz" | "/stats" | "/metrics" | "/probes" | "/promote" | "/top-k" | "/above-theta",
        ) => {
            respond_error(shared, stream, 405, format!("method {} not allowed", request.method));
        }
        (_, path) => respond_error(shared, stream, 404, format!("unknown path {path:?}")),
    }
    shared.metrics.observe_request(endpoint, start.elapsed().as_secs_f64(), body_len);
}

/// Parses a query request body into a core [`QueryRequest`] and the query
/// rows (flat). The wire protocol maps directly onto the engine's unified
/// query surface: `/top-k` builds [`QueryRequest::top_k`] (or the floored
/// variant), `/above-theta` builds [`QueryRequest::above_theta`].
fn parse_query(request: &Request, dim: usize) -> Result<(QueryRequest, Vec<f64>), (u16, String)> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| (400, "body is not valid UTF-8".to_string()))?;
    let body = Json::parse(text).map_err(|e| (400, format!("invalid JSON: {e}")))?;
    let kind = match request.path.as_str() {
        "/top-k" => {
            let k = body
                .get("k")
                .and_then(Json::as_u64)
                .ok_or((400, "missing or invalid \"k\"".to_string()))?;
            // A 64-bit k is accepted as-is: the engine clamps it to the
            // live probe count, so a hostile value cannot size a heap.
            match body.get("floor") {
                None => QueryRequest::top_k(k as usize),
                Some(v) => {
                    let floor = v.as_f64().ok_or((400, "invalid \"floor\"".to_string()))?;
                    QueryRequest::top_k_with_floor(k as usize, floor)
                }
            }
        }
        _ => {
            let theta = body
                .get("theta")
                .and_then(Json::as_f64)
                .ok_or((400, "missing or invalid \"theta\"".to_string()))?;
            QueryRequest::above_theta(theta)
        }
    };
    let rows = body
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or((400, "missing or invalid \"queries\"".to_string()))?;
    let mut flat = Vec::with_capacity(rows.len() * dim);
    for (i, row) in rows.iter().enumerate() {
        let row = row.as_arr().ok_or_else(|| (400, format!("query {i} is not an array")))?;
        if row.len() != dim {
            return Err((
                400,
                format!("query {i} has {} coordinates, engine dim is {dim}", row.len()),
            ));
        }
        for x in row {
            flat.push(x.as_f64().ok_or_else(|| (400, format!("query {i} holds a non-number")))?);
        }
    }
    Ok((kind, flat))
}

/// Answers a query request, micro-batching compatible queued requests into
/// the same engine call when `allow_batch` is set.
fn handle_query(
    stream: TcpStream,
    request: Request,
    shared: &Shared,
    worker: &mut WorkerState,
    allow_batch: bool,
) {
    let start = Instant::now();
    let endpoint = metrics::Endpoint::of(&request.path);
    let (query, mut flat) = match parse_query(&request, shared.dim) {
        Ok(parsed) => parsed,
        Err((status, message)) => return respond_error(shared, stream, status, message),
    };
    let mut jobs = vec![QueryJob { stream, rows: flat.len() / shared.dim }];
    // Body sizes of requests that join this batch: they skip the dispatch
    // wrapper, so their histogram samples are recorded here instead.
    let mut joined_bodies: Vec<usize> = Vec::new();

    // Micro-batching: one worker wakeup drains every *compatible* queued
    // query request (same endpoint, same parameters) and answers them all
    // with a single engine call. Incompatible requests are answered
    // individually, in arrival order, before the batch runs. Only
    // connections whose request bytes have already arrived join the batch
    // (a quick `peek` probe decides): a silent peer goes back to the queue
    // for ordinary handling instead of stalling the already-parsed request
    // behind its read timeout.
    if allow_batch {
        while jobs.len() < shared.cfg.batch_max.max(1) {
            let Some(mut next) = shared.queue.try_pop() else { break };
            let _ = next.set_read_timeout(Some(Duration::from_millis(1)));
            let mut probe = [0u8; 1];
            if !matches!(next.peek(&mut probe), Ok(n) if n > 0) {
                // No bytes in flight (or peer already gone): requeue and
                // stop draining. If the queue refilled meanwhile, shed —
                // exactly what the acceptor would have done.
                if let Err(mut next) = shared.queue.try_push(next) {
                    ServerStats::bump(&shared.stats.shed);
                    let _ = next.set_write_timeout(shared.cfg.io_timeout);
                    let body = obj(vec![("error", Json::Str("overloaded".into()))]).render();
                    let _ = http::write_response(&mut next, 503, &body);
                }
                break;
            }
            let _ = next.set_read_timeout(shared.cfg.io_timeout);
            let _ = next.set_write_timeout(shared.cfg.io_timeout);
            let _ = next.set_nodelay(true);
            let next_request = match http::read_request(&mut next, shared.cfg.max_body) {
                Ok(r) => r,
                Err(e) => {
                    respond_http_error(shared, next, e);
                    continue;
                }
            };
            ServerStats::bump(&shared.stats.requests);
            if next_request.method == "POST" && next_request.path == request.path {
                match parse_query(&next_request, shared.dim) {
                    Ok((next_query, next_flat)) if next_query == query => {
                        joined_bodies.push(next_request.body.len());
                        jobs.push(QueryJob { stream: next, rows: next_flat.len() / shared.dim });
                        flat.extend_from_slice(&next_flat);
                    }
                    Ok(_) => {
                        // Same endpoint, different parameters: its own call.
                        dispatch(next, next_request, shared, worker, false);
                    }
                    Err((status, message)) => respond_error(shared, next, status, message),
                }
            } else {
                dispatch(next, next_request, shared, worker, false);
            }
        }
    }

    let store = match VectorStore::from_flat(flat, shared.dim) {
        Ok(store) => store,
        Err(e) => {
            // Non-finite coordinates and the like: reject the whole batch
            // (every member contributed finite JSON numbers, so in practice
            // this is unreachable; stay defensive anyway).
            for job in jobs {
                respond_error(shared, job.stream, 400, format!("invalid queries: {e}"));
            }
            return;
        }
    };

    ServerStats::bump(&shared.stats.batches);
    if jobs.len() > 1 {
        ServerStats::add(&shared.stats.batched_requests, jobs.len() as u64);
    }
    ServerStats::add(&shared.stats.queries, store.len() as u64);
    if query.kind.is_above() {
        ServerStats::add(&shared.stats.above_requests, jobs.len() as u64);
    } else {
        ServerStats::add(&shared.stats.topk_requests, jobs.len() as u64);
    }

    // The unified dispatch: every query request — whatever the backend —
    // is planned and executed through the `Engine` trait. No per-engine
    // match arms anywhere on the query path; hostile parameters (huge k)
    // are clamped by the engine itself. The plan is cached per worker:
    // the edit counter is read *under the read lock* (edits bump it while
    // holding the write lock), so a cached (request, edits) pair can never
    // be stale for the engine state the lock protects.
    let engine = shared.read_engine();
    let edits = shared.edits.load(Ordering::Acquire);
    let cached = worker.plan.as_ref().is_some_and(|(req, at, _)| *req == query && *at == edits);
    if cached {
        ServerStats::bump(&shared.metrics.plan_cache_hits);
    } else {
        // Same request, newer engine: refresh instead of recompiling from
        // scratch — a sharded engine re-plans only the segments of shards
        // an edit actually touched ([`Engine::refresh_plan`]).
        let plan = match worker.plan.take() {
            Some((req, _, plan)) if req == query => {
                ServerStats::bump(&shared.metrics.plan_refreshes);
                engine.as_engine().refresh_plan(&plan)
            }
            _ => {
                ServerStats::bump(&shared.metrics.plan_cache_misses);
                engine.as_engine().plan(&query)
            }
        };
        worker.plan = Some((query, edits, plan));
    }
    let (_, _, plan) = worker.plan.as_ref().expect("plan cached above");
    // `execute_observed` routes the run's `RunStats` into the `/metrics`
    // registry (candidates, pruned pairs, method mix, per-kind counts).
    let response =
        engine.as_engine().execute_observed(plan, &store, &mut worker.scratch, &shared.metrics);
    drop(engine);

    let folded = jobs.len();
    let run_stats = response.stats.clone();
    match response.rows {
        QueryRows::Lists(lists) => {
            let mut offset = 0usize;
            for job in jobs {
                let rendered: Vec<Json> = lists[offset..offset + job.rows]
                    .iter()
                    .map(|list| {
                        Json::Arr(
                            list.iter()
                                .map(|item| {
                                    obj(vec![
                                        ("id", Json::Num(item.id as f64)),
                                        ("score", Json::Num(item.score)),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect();
                offset += job.rows;
                respond(job.stream, 200, &obj(vec![("lists", Json::Arr(rendered))]));
            }
        }
        QueryRows::Entries(entries) => {
            // Split the (unordered) entries back per job by query-row range.
            let mut per_job: Vec<Vec<Json>> = jobs.iter().map(|_| Vec::new()).collect();
            let mut bounds = Vec::with_capacity(jobs.len() + 1);
            bounds.push(0usize);
            for job in &jobs {
                bounds.push(bounds.last().unwrap() + job.rows);
            }
            for e in &entries {
                let q = e.query as usize;
                let j = bounds.partition_point(|&b| b <= q) - 1;
                per_job[j].push(obj(vec![
                    ("query", Json::Num((q - bounds[j]) as f64)),
                    ("probe", Json::Num(e.probe as f64)),
                    ("value", Json::Num(e.value)),
                ]));
            }
            for (job, entries) in jobs.into_iter().zip(per_job) {
                let count = entries.len();
                respond(
                    job.stream,
                    200,
                    &obj(vec![("entries", Json::Arr(entries)), ("count", Json::Num(count as f64))]),
                );
            }
        }
    }

    // Batch-joined requests share the batch's wall latency (they waited on
    // the same engine call); the first request is observed by dispatch.
    let elapsed = start.elapsed();
    for body_len in joined_bodies {
        shared.metrics.observe_request(endpoint, elapsed.as_secs_f64(), body_len);
    }
    if shared.cfg.slow_query.is_some_and(|threshold| elapsed >= threshold) {
        ServerStats::bump(&shared.metrics.slow_queries);
        if let Some((req, _, _)) = worker.plan.as_ref() {
            eprintln!("{}", slow_query_line(req, folded, elapsed, &run_stats).render());
        }
    }
}

/// The structured slow-query log line: one JSON object per offending
/// engine call (a batch logs once, with its fold count), written to
/// stderr by `handle_query` when [`ServeConfig::slow_query`] is set.
fn slow_query_line(
    req: &QueryRequest,
    requests: usize,
    elapsed: Duration,
    stats: &RunStats,
) -> Json {
    let mut fields =
        vec![("slow_query", Json::Bool(true)), ("kind", Json::Str(req.kind.name().into()))];
    match req.kind {
        QueryKind::TopK { k } => fields.push(("k", Json::Num(k as f64))),
        QueryKind::TopKWithFloor { k, floor } => {
            fields.push(("k", Json::Num(k as f64)));
            fields.push(("floor", Json::Num(floor)));
        }
        QueryKind::AboveTheta { theta } | QueryKind::AbsAboveTheta { theta } => {
            fields.push(("theta", Json::Num(theta)));
        }
    }
    let c = &stats.counters;
    let mix = &stats.method_mix;
    fields.extend([
        ("latency_ms", Json::Num(elapsed.as_secs_f64() * 1e3)),
        ("requests", Json::Num(requests as f64)),
        ("queries", Json::Num(c.queries as f64)),
        ("candidates", Json::Num(c.candidates as f64)),
        ("results", Json::Num(c.results as f64)),
        ("retrieval_ms", Json::Num(c.retrieval_ns as f64 / 1e6)),
        ("buckets", Json::Num(stats.bucket_count as f64)),
        (
            "method_mix",
            obj(metrics::ALGO_LABELS
                .iter()
                .zip([
                    mix.length, mix.coord, mix.incr, mix.ta, mix.tree, mix.l2ap, mix.blsh,
                    mix.quant,
                ])
                .filter(|(_, n)| *n > 0)
                .map(|(&algo, n)| (algo, Json::Num(n as f64)))
                .collect()),
        ),
    ]);
    obj(fields)
}

/// One validated edit of a `POST /probes` request.
enum Edit<'a> {
    Insert(&'a [f64]),
    Remove(u32),
}

/// Applies a request's edits through one backend closure (chosen once per
/// request), collecting the response arrays in request order; stops at the
/// first failure.
fn run_edits(
    inserts: &[Vec<f64>],
    removals: &[u32],
    mut apply: impl FnMut(Edit<'_>) -> Result<Json, (u16, String)>,
) -> (Vec<Json>, Vec<Json>, Option<(u16, String)>) {
    let mut inserted = Vec::with_capacity(inserts.len());
    let mut removed = Vec::with_capacity(removals.len());
    for v in inserts {
        match apply(Edit::Insert(v)) {
            Ok(id) => inserted.push(id),
            Err(failure) => return (inserted, removed, Some(failure)),
        }
    }
    for &id in removals {
        match apply(Edit::Remove(id)) {
            Ok(was_live) => removed.push(was_live),
            Err(failure) => return (inserted, removed, Some(failure)),
        }
    }
    (inserted, removed, None)
}

/// `POST /probes`: inserts/removals behind the write lock, routed to the
/// owning shard on a sharded backend. All vectors are validated *before*
/// the lock is taken, so the engine never sees a partial edit.
fn handle_probes(stream: TcpStream, request: &Request, shared: &Shared) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return respond_error(shared, stream, 400, "body is not valid UTF-8".into()),
    };
    let body = match Json::parse(text) {
        Ok(b) => b,
        Err(e) => return respond_error(shared, stream, 400, format!("invalid JSON: {e}")),
    };
    let mut inserts: Vec<Vec<f64>> = Vec::new();
    if let Some(rows) = body.get("insert") {
        let Some(rows) = rows.as_arr() else {
            return respond_error(shared, stream, 400, "\"insert\" is not an array".into());
        };
        for (i, row) in rows.iter().enumerate() {
            let Some(row) = row.as_arr() else {
                return respond_error(shared, stream, 400, format!("insert {i} is not an array"));
            };
            if row.len() != shared.dim {
                return respond_error(
                    shared,
                    stream,
                    400,
                    format!(
                        "insert {i} has {} coordinates, engine dim is {}",
                        row.len(),
                        shared.dim
                    ),
                );
            }
            let mut v = Vec::with_capacity(row.len());
            for x in row {
                match x.as_f64() {
                    Some(x) => v.push(x),
                    None => {
                        return respond_error(
                            shared,
                            stream,
                            400,
                            format!("insert {i} holds a non-number"),
                        )
                    }
                }
            }
            inserts.push(v);
        }
    }
    let mut removals: Vec<u32> = Vec::new();
    if let Some(ids) = body.get("remove") {
        let Some(ids) = ids.as_arr() else {
            return respond_error(shared, stream, 400, "\"remove\" is not an array".into());
        };
        for (i, id) in ids.iter().enumerate() {
            match id.as_u64() {
                Some(id) if id <= u32::MAX as u64 => removals.push(id as u32),
                _ => {
                    return respond_error(
                        shared,
                        stream,
                        400,
                        format!("remove {i} is not a probe id"),
                    )
                }
            }
        }
    }

    ServerStats::bump(&shared.stats.probe_requests);
    let mut guard = shared.write_engine();
    let pre_lsn = guard.durable_store().map(|s| s.next_lsn());
    // Every backend runs the same loop (the engine kind is dispatched once
    // per request, not per record); the durable ones append each edit to
    // the owning WAL *before* applying it (log-then-apply), still under
    // this write lock. A failure aborts the request: earlier edits of the
    // request have applied (and are logged), later ones are not attempted —
    // the engine and its log never diverge. Each successful insert also
    // records the shard it was routed to (always 0 on a single engine).
    let mut shards: Vec<Json> = Vec::with_capacity(inserts.len());
    let (inserted, removed, failure) = match &mut *guard {
        ServeEngine::Dynamic(engine) => run_edits(&inserts, &removals, |edit| match edit {
            // Validated above; only pathological inputs can land here.
            Edit::Insert(v) => engine
                .insert(v)
                .map(|id| {
                    shards.push(Json::Num(0.0));
                    Json::Num(id as f64)
                })
                .map_err(|e| (400, format!("insert rejected: {e}"))),
            Edit::Remove(id) => Ok(Json::Bool(engine.remove(id))),
        }),
        ServeEngine::Durable(engine) => run_edits(&inserts, &removals, |edit| match edit {
            Edit::Insert(v) => engine
                .insert(v)
                .map(|id| {
                    shards.push(Json::Num(0.0));
                    Json::Num(id as f64)
                })
                .map_err(|e| match e {
                    StoreError::Invalid(msg) => (400, format!("insert rejected: {msg}")),
                    other => (500, format!("wal append failed: {other}")),
                }),
            Edit::Remove(id) => engine
                .remove(id)
                .map(Json::Bool)
                .map_err(|e| (500, format!("wal append failed: {e}"))),
        }),
        ServeEngine::Sharded(engine) => run_edits(&inserts, &removals, |edit| match edit {
            Edit::Insert(v) => engine
                .insert(v)
                .map(|id| {
                    let owner = engine.owner_of(id).expect("freshly inserted id is live");
                    shards.push(Json::Num(owner as f64));
                    Json::Num(id as f64)
                })
                .map_err(|e| (400, format!("insert rejected: {e}"))),
            Edit::Remove(id) => Ok(Json::Bool(engine.remove(id))),
        }),
        ServeEngine::ShardedDurable(engine) => run_edits(&inserts, &removals, |edit| match edit {
            Edit::Insert(v) => engine
                .insert(v)
                .map(|(id, shard)| {
                    shards.push(Json::Num(shard as f64));
                    Json::Num(id as f64)
                })
                .map_err(|e| match e {
                    StoreError::Invalid(msg) => (400, format!("insert rejected: {msg}")),
                    other => (500, format!("wal append failed: {other}")),
                }),
            Edit::Remove(id) => engine
                .remove(id)
                .map(|owner| Json::Bool(owner.is_some()))
                .map_err(|e| (500, format!("wal append failed: {e}"))),
        }),
    };
    let live = guard.len();
    let post_lsn = guard.durable_store().map(|s| s.next_lsn());
    // Invalidate worker plan caches *while still holding the write lock*:
    // a reader that observes the old counter is ordered before this edit
    // and executes against the pre-edit engine, never a stale mix. This
    // runs on the failure path too — partial edits may have applied.
    shared.edits.fetch_add(1, Ordering::Release);
    drop(guard);
    if let Some((status, message)) = failure {
        return respond_error(shared, stream, status, message);
    }
    // Semi-synchronous mode: hold the acknowledgment (outside the engine
    // lock — queries and followers keep flowing) until `sync_replicas`
    // fresh followers' durable watermarks cover this request's last LSN.
    // On timeout the edit is NOT rolled back: it is fsynced locally and
    // stays queued for every follower, so the structured 503 reports
    // delayed replication, never lost data.
    if shared.cfg.sync_replicas > 0
        && shared.repl.role.load(Ordering::SeqCst) == replication::ROLE_LEADER
    {
        if let (Some(pre), Some(post)) = (pre_lsn, post_lsn) {
            if post > pre {
                if let Err(acked) = shared.repl.await_quorum(
                    shared.cfg.sync_replicas,
                    post,
                    shared.cfg.quorum_timeout,
                    shared.cfg.follower_ttl,
                ) {
                    ServerStats::bump(&shared.stats.quorum_timeouts);
                    return respond(
                        stream,
                        503,
                        &obj(vec![
                            (
                                "error",
                                Json::Str(format!(
                                    "quorum not reached: {acked} of {} required followers \
                                     acknowledged LSN {post} within {}ms; the edit is durable \
                                     locally and queued for followers",
                                    shared.cfg.sync_replicas,
                                    shared.cfg.quorum_timeout.as_millis()
                                )),
                            ),
                            ("code", Json::Str("quorum_timeout".into())),
                            ("required", Json::Num(shared.cfg.sync_replicas as f64)),
                            ("acked", Json::Num(acked as f64)),
                            ("lsn", Json::Num(post as f64)),
                        ]),
                    );
                }
            }
        }
    }
    respond(
        stream,
        200,
        &obj(vec![
            ("inserted", Json::Arr(inserted)),
            ("shards", Json::Arr(shards)),
            ("removed", Json::Arr(removed)),
            ("probes", Json::Num(live as f64)),
        ]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_sheds_on_overflow_and_drains_fifo() {
        let queue = ConnQueue::new(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mk = || TcpStream::connect(addr).unwrap();
        assert!(queue.try_push(mk()).is_ok());
        assert!(queue.try_push(mk()).is_ok());
        assert!(queue.try_push(mk()).is_err(), "third push must overflow");
        assert!(queue.try_pop().is_some());
        assert!(queue.try_push(mk()).is_ok(), "freed slot accepts again");
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        assert!(queue.try_pop().is_none());
        queue.close();
        assert!(queue.pop().is_none(), "closed + empty unblocks pop");
        assert!(queue.try_push(mk()).is_err(), "closed queue rejects");
    }

    #[test]
    fn slow_query_line_renders_a_structured_json_record() {
        use lemp_core::{MethodMix, RetrievalCounters};
        let stats = RunStats {
            counters: RetrievalCounters {
                queries: 4,
                candidates: 120,
                results: 20,
                retrieval_ns: 2_500_000,
                ..Default::default()
            },
            method_mix: MethodMix { incr: 3, quant: 1, ..Default::default() },
            bucket_count: 7,
            ..Default::default()
        };
        let line = slow_query_line(
            &QueryRequest::top_k_with_floor(5, 0.25),
            3,
            Duration::from_millis(12),
            &stats,
        );
        assert_eq!(line.get("slow_query"), Some(&Json::Bool(true)));
        assert_eq!(line.get("kind").and_then(Json::as_str), Some("top-k-with-floor"));
        assert_eq!(line.get("k").and_then(Json::as_f64), Some(5.0));
        assert_eq!(line.get("floor").and_then(Json::as_f64), Some(0.25));
        assert_eq!(line.get("latency_ms").and_then(Json::as_f64), Some(12.0));
        assert_eq!(line.get("requests").and_then(Json::as_u64), Some(3));
        assert_eq!(line.get("queries").and_then(Json::as_u64), Some(4));
        assert_eq!(line.get("candidates").and_then(Json::as_u64), Some(120));
        assert_eq!(line.get("retrieval_ms").and_then(Json::as_f64), Some(2.5));
        let mix = line.get("method_mix").expect("method_mix object");
        assert_eq!(mix.get("INCR").and_then(Json::as_u64), Some(3));
        assert_eq!(mix.get("QUANT").and_then(Json::as_u64), Some(1));
        assert_eq!(mix.get("LENGTH"), None, "zero counts are elided");
        // The rendered line is one self-contained JSON object.
        let rendered = line.render();
        assert!(rendered.starts_with('{') && rendered.ends_with('}'), "{rendered}");
        assert!(!rendered.contains('\n'), "log lines must be single-line");
    }

    #[test]
    fn query_request_batch_compatibility() {
        let a = QueryRequest::top_k(5);
        let b = QueryRequest::top_k(5);
        let c = QueryRequest::top_k(6);
        let d = QueryRequest::above_theta(1.0);
        let e = QueryRequest::top_k_with_floor(5, 0.5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e);
    }

    #[test]
    fn parse_query_validates_shape() {
        let req = |path: &str, body: &str| Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            body: body.as_bytes().to_vec(),
        };
        let (query, flat) =
            parse_query(&req("/top-k", r#"{"queries":[[1,2],[3,4]],"k":3}"#), 2).unwrap();
        assert_eq!(query, QueryRequest::top_k(3));
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        let (query, _) =
            parse_query(&req("/top-k", r#"{"queries":[[1,2]],"k":3,"floor":0.5}"#), 2).unwrap();
        assert_eq!(query, QueryRequest::top_k_with_floor(3, 0.5));
        let (query, _) =
            parse_query(&req("/above-theta", r#"{"queries":[],"theta":0.5}"#), 2).unwrap();
        assert_eq!(query, QueryRequest::above_theta(0.5));
        for (path, body) in [
            ("/top-k", r#"{"queries":[[1,2]]}"#),         // missing k
            ("/top-k", r#"{"queries":[[1,2]],"k":-1}"#),  // bad k
            ("/top-k", r#"{"queries":[[1]],"k":1}"#),     // wrong dim
            ("/top-k", r#"{"queries":[["x",2]],"k":1}"#), // non-number
            ("/top-k", r#"{"k":1}"#),                     // missing queries
            ("/above-theta", r#"{"queries":[[1,2]]}"#),   // missing theta
            ("/top-k", "not json"),
        ] {
            assert!(parse_query(&req(path, body), 2).is_err(), "{body} should fail");
        }
    }
}
