//! A minimal JSON value type, parser and serializer.
//!
//! The build environment has no crates.io access (the same constraint that
//! produced the `vendor/` stand-ins), so the service speaks JSON through
//! this hand-rolled implementation. It covers exactly what the wire format
//! needs: finite numbers, strings with standard escapes, booleans, null,
//! arrays and objects (insertion-ordered), a recursion-depth cap against
//! hostile nesting, and shortest-roundtrip `f64` output via Rust's float
//! `Display`.

use std::fmt;

/// Maximum nesting depth accepted by the parser (defense against
/// stack-exhaustion payloads like `[[[[…`).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/∞; the serializer maps those to
    /// `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (no hashing, tiny objects).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a message plus the byte offset it refers to.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object lookup (first match; objects built by this crate never hold
    /// duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions and
    /// negatives — ids and counts on the wire).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (the whole input must be consumed).
    ///
    /// # Errors
    /// [`JsonError`] with the offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Serializes to compact JSON. Non-finite numbers become `null` (JSON
    /// has no representation for them); finite numbers print in Rust's
    /// shortest-roundtrip form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if *x != 0.0 && (x.abs() < 1e-4 || x.abs() >= 1e15) {
                    // Exponent form keeps extreme magnitudes compact
                    // (`Display` would expand 2.5e300 to 300 digits).
                    out.push_str(&format!("{x:e}"));
                } else {
                    // `Display` for f64 is shortest-roundtrip; integral
                    // values print without a fraction, which JSON allows.
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it's a &str) and we only split
                // at ASCII bytes, so this slice is valid UTF-8 too.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }
}

/// Builds a `Json::Obj` from key/value pairs (tiny readability helper).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A `Json::Arr` of numbers.
pub fn num_arr(xs: impl IntoIterator<Item = f64>) -> Json {
    Json::Arr(xs.into_iter().map(Json::Num).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":[1,{\"b\":null}]}",
        ] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.render()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse("  { \"k\" : [ 1 , 2.5 , \"x\" ] }\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"back\\slash\ttab\u{08}\u{0C}\u{1F}unicode: ünïcødé 🦀";
        let rendered = Json::Str(original.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str().unwrap(), original);
        // explicit escapes and surrogate pairs parse
        assert_eq!(
            Json::parse("\"a\\u00e9\\ud83e\\udd80b\\/\"").unwrap().as_str().unwrap(),
            "aé🦀b/"
        );
    }

    #[test]
    fn numbers_render_shortest_roundtrip() {
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Num(-2.5e300).render(), "-2.5e300");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        let x = 0.1 + 0.2;
        let back = Json::parse(&Json::Num(x).render()).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "tru",
            "01x",
            "[1,]",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":1,}",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "1e999",
            "[1] trailing",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_blocks_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    #[test]
    fn object_lookup_and_helpers() {
        let v = obj(vec![("x", Json::Num(1.0)), ("y", Json::Bool(true))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("y").unwrap().as_bool(), Some(true));
        assert!(v.get("z").is_none());
        assert_eq!(num_arr([1.0, 2.0]).render(), "[1,2]");
    }
}
