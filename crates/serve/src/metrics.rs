//! The zero-dependency observability registry behind `GET /metrics`:
//! lock-free fixed-bucket histograms, counters, and the Prometheus text
//! exposition renderer.
//!
//! Everything here is `std`-only atomics — recording a sample is a handful
//! of relaxed `fetch_add`s (plus one CAS loop for the f64 sum), so the
//! instrumentation can sit directly on the serve hot path. The registry
//! ([`Metrics`]) holds only the *cumulative* series (request latency and
//! body-size histograms per endpoint, plan-cache and engine-telemetry
//! counters); point-in-time gauges (WAL watermarks, replication lag,
//! memory residency, uptime) are sampled at scrape time by the `/metrics`
//! handler and passed in as [`ScrapeGauges`] — a scrape never observes a
//! half-updated gauge and the registry never holds a lock.
//!
//! [`Metrics`] implements [`lemp_core::TelemetrySink`], so the engine's
//! [`execute_observed`](lemp_core::Engine::execute_observed) path feeds
//! the per-query [`RunStats`]/[`MethodMix`](lemp_core::MethodMix)
//! accounting straight into the `lemp_engine_*` families without the core
//! crate knowing this module exists.
//!
//! The output of [`Metrics::render`] follows the Prometheus text
//! exposition format, version 0.0.4: one `# HELP`/`# TYPE` pair per
//! family, histogram samples as cumulative `le`-labeled `_bucket` series
//! ending in `le="+Inf"` plus `_sum`/`_count`. The in-repo
//! `scripts/promlint.py` checker (run in CI) validates exactly these
//! invariants on a live scrape.

use std::sync::atomic::{AtomicU64, Ordering};

use lemp_core::{QueryRequest, RunStats, TelemetrySink};
use lemp_store::WalStats;

/// Histogram bucket upper bounds for request latency, in seconds —
/// 100 µs to 10 s, roughly log-spaced (the classic 1-2.5-5 decade walk).
pub const DURATION_BOUNDS: [f64; 16] = [
    0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Histogram bucket upper bounds for request body sizes, in bytes —
/// 256 B to the 16 MiB `max_body` default, one bucket per 4×.
pub const BODY_BOUNDS: [f64; 9] = [
    256.0,
    1_024.0,
    4_096.0,
    16_384.0,
    65_536.0,
    262_144.0,
    1_048_576.0,
    4_194_304.0,
    16_777_216.0,
];

/// A lock-free fixed-bucket histogram: one atomic bin per upper bound plus
/// an overflow (`+Inf`) bin, a sample count, and an exact f64 sum
/// (accumulated through a compare-exchange loop on the bit pattern).
///
/// Bucket semantics follow Prometheus: a sample `v` lands in the first
/// bucket whose upper bound satisfies `v <= le`. Recording is wait-free on
/// the bins and count; the sum CAS retries only under write contention on
/// the same histogram.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    /// `bounds.len() + 1` bins; the last is the `+Inf` overflow.
    bins: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given finite upper bounds (`+Inf` is implicit).
    ///
    /// # Panics
    /// If `bounds` is empty, unsorted, or holds a non-finite value.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one finite bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec().into_boxed_slice(),
            bins: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// A latency histogram over [`DURATION_BOUNDS`] (seconds).
    pub fn request_latency() -> Self {
        Self::new(&DURATION_BOUNDS)
    }

    /// A body-size histogram over [`BODY_BOUNDS`] (bytes).
    pub fn body_bytes() -> Self {
        Self::new(&BODY_BOUNDS)
    }

    /// Records one sample. NaN is counted into the `+Inf` bin (it fits no
    /// finite bound) so `_count` always equals the number of calls.
    pub fn observe(&self, v: f64) {
        // `partition_point` would put NaN at index 0 (every `b < NaN` is
        // false); route it to +Inf explicitly, matching Prometheus.
        let idx =
            if v.is_nan() { self.bins.len() - 1 } else { self.bounds.partition_point(|&b| b < v) };
        self.bins[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bin (non-cumulative) sample counts; the final entry is the
    /// `+Inf` overflow bin.
    pub fn bin_counts(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank — the
    /// standard fixed-bucket estimator (what `histogram_quantile` does on
    /// the scrape side). Samples in the overflow bin clamp to the largest
    /// finite bound. Returns NaN on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, bin) in self.bins.iter().enumerate() {
            let n = bin.load(Ordering::Relaxed);
            if n == 0 {
                cum += n;
                continue;
            }
            if (cum + n) as f64 >= target {
                let Some(&hi) = self.bounds.get(i) else {
                    // Overflow bin: all we know is "past the last bound".
                    return *self.bounds.last().expect("bounds are non-empty");
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (target - cum as f64) / n as f64;
                return lo + frac * (hi - lo);
            }
            cum += n;
        }
        *self.bounds.last().expect("bounds are non-empty")
    }
}

/// The fixed endpoint label set of the HTTP metric families. Unknown paths
/// collapse into [`Endpoint::Other`] so a scanner probing random URLs
/// cannot mint unbounded label values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /top-k`.
    TopK,
    /// `POST /above-theta`.
    AboveTheta,
    /// `POST /probes`.
    Probes,
    /// `POST /promote`.
    Promote,
    /// `GET /healthz`.
    Healthz,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics` (scrapes observe themselves).
    MetricsPage,
    /// Anything else (404s and friends).
    Other,
}

impl Endpoint {
    /// Every endpoint, in rendering order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::TopK,
        Endpoint::AboveTheta,
        Endpoint::Probes,
        Endpoint::Promote,
        Endpoint::Healthz,
        Endpoint::Stats,
        Endpoint::MetricsPage,
        Endpoint::Other,
    ];

    /// Maps a request path onto its endpoint bucket.
    pub fn of(path: &str) -> Endpoint {
        match path {
            "/top-k" => Endpoint::TopK,
            "/above-theta" => Endpoint::AboveTheta,
            "/probes" => Endpoint::Probes,
            "/promote" => Endpoint::Promote,
            "/healthz" => Endpoint::Healthz,
            "/stats" => Endpoint::Stats,
            "/metrics" => Endpoint::MetricsPage,
            _ => Endpoint::Other,
        }
    }

    /// The `path` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::TopK => "/top-k",
            Endpoint::AboveTheta => "/above-theta",
            Endpoint::Probes => "/probes",
            Endpoint::Promote => "/promote",
            Endpoint::Healthz => "/healthz",
            Endpoint::Stats => "/stats",
            Endpoint::MetricsPage => "/metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|&e| e == self).expect("ALL lists every endpoint")
    }
}

/// The `algo` label values of `lemp_engine_method_pairs_total`, in the
/// order of the [`lemp_core::MethodMix`] fields.
pub const ALGO_LABELS: [&str; 8] =
    ["LENGTH", "COORD", "INCR", "TA", "Tree", "L2AP", "BLSH", "QUANT"];

/// The `kind` label values of `lemp_engine_requests_total`, matching
/// [`lemp_core::QueryKind::name`].
const KIND_LABELS: [&str; 4] = ["above-theta", "abs-above-theta", "top-k", "top-k-with-floor"];

/// The cumulative metric registry of one server instance. All fields are
/// plain atomics or [`Histogram`]s — recording never blocks, and a scrape
/// reads whatever is current without coordination (per-sample precision is
/// not required between series; each individual series is exact).
#[derive(Debug)]
pub struct Metrics {
    /// Request latency per endpoint (seconds), indexed by [`Endpoint`].
    latency: Vec<Histogram>,
    /// Request body size per endpoint (bytes), indexed by [`Endpoint`].
    body: Vec<Histogram>,
    /// Worker plan-cache hits (the cached `(request, edits)` pair matched).
    pub plan_cache_hits: AtomicU64,
    /// Worker plan-cache misses compiled from scratch.
    pub plan_cache_misses: AtomicU64,
    /// Worker plan-cache misses served by [`lemp_core::Engine::refresh_plan`]
    /// (same request, newer engine — stale segments recompiled only).
    pub plan_refreshes: AtomicU64,
    /// Engine executions by query kind, indexed like [`KIND_LABELS`].
    engine_requests: [AtomicU64; 4],
    /// Query vectors the engine answered.
    pub engine_queries: AtomicU64,
    /// Full inner products computed (the paper's candidate count).
    pub engine_candidates: AtomicU64,
    /// (query, probe) pairs pruned before a full inner product —
    /// `queries × probes − candidates`, saturating.
    pub engine_pruned: AtomicU64,
    /// Result rows produced.
    pub engine_results: AtomicU64,
    /// Retrieval-phase time, nanoseconds.
    pub engine_retrieval_ns: AtomicU64,
    /// (query, bucket) pairs served per bucket algorithm, indexed like
    /// [`ALGO_LABELS`].
    method_pairs: [AtomicU64; 8],
    /// Requests that exceeded the slow-query threshold and were logged.
    pub slow_queries: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            latency: Endpoint::ALL.iter().map(|_| Histogram::request_latency()).collect(),
            body: Endpoint::ALL.iter().map(|_| Histogram::body_bytes()).collect(),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_refreshes: AtomicU64::new(0),
            engine_requests: Default::default(),
            engine_queries: AtomicU64::new(0),
            engine_candidates: AtomicU64::new(0),
            engine_pruned: AtomicU64::new(0),
            engine_results: AtomicU64::new(0),
            engine_retrieval_ns: AtomicU64::new(0),
            method_pairs: Default::default(),
            slow_queries: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Records one answered request: its endpoint, wall latency and
    /// request body size. Batched query requests call this once per
    /// *request* (not per engine call), so the `/top-k` `_count` matches
    /// the number of requests clients actually sent.
    pub fn observe_request(&self, endpoint: Endpoint, seconds: f64, body_bytes: usize) {
        self.latency[endpoint.index()].observe(seconds);
        self.body[endpoint.index()].observe(body_bytes as f64);
    }

    /// The latency histogram of one endpoint (tests and quantile reads).
    pub fn latency_of(&self, endpoint: Endpoint) -> &Histogram {
        &self.latency[endpoint.index()]
    }

    /// The method-pair counter value of one algorithm label.
    pub fn method_pairs_of(&self, algo: &str) -> u64 {
        ALGO_LABELS
            .iter()
            .position(|&a| a == algo)
            .map_or(0, |i| self.method_pairs[i].load(Ordering::Relaxed))
    }

    /// Renders the full Prometheus text exposition: the registry's
    /// cumulative series plus the caller-sampled [`ScrapeGauges`].
    pub fn render(&self, stats: &crate::stats::ServerStats, gauges: &ScrapeGauges) -> String {
        let mut out = String::with_capacity(16 * 1024);
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);

        // HTTP layer.
        let series: Vec<(Vec<(&str, String)>, &Histogram)> = Endpoint::ALL
            .iter()
            .map(|&e| (vec![("path", e.label().to_string())], &self.latency[e.index()]))
            .collect();
        write_histogram_family(
            &mut out,
            "lemp_http_request_duration_seconds",
            "Wall time from request read to response write, per endpoint.",
            &series,
        );
        let series: Vec<(Vec<(&str, String)>, &Histogram)> = Endpoint::ALL
            .iter()
            .map(|&e| (vec![("path", e.label().to_string())], &self.body[e.index()]))
            .collect();
        write_histogram_family(
            &mut out,
            "lemp_http_request_body_bytes",
            "Request body size, per endpoint.",
            &series,
        );
        write_counter(
            &mut out,
            "lemp_http_requests_total",
            "Requests fully read and routed (any endpoint, any outcome).",
            get(&stats.requests),
        );
        write_counter(
            &mut out,
            "lemp_http_shed_total",
            "Connections answered 503 because the accept queue was full.",
            get(&stats.shed),
        );
        write_counter(
            &mut out,
            "lemp_http_client_errors_total",
            "Requests rejected with a 4xx.",
            get(&stats.client_errors),
        );
        write_counter(
            &mut out,
            "lemp_http_server_errors_total",
            "Requests failed with a 5xx.",
            get(&stats.server_errors),
        );
        write_counter(
            &mut out,
            "lemp_batches_total",
            "Engine calls made for query endpoints (micro-batching folds requests).",
            get(&stats.batches),
        );
        write_counter(
            &mut out,
            "lemp_batched_requests_total",
            "Query requests answered as part of a multi-request batch.",
            get(&stats.batched_requests),
        );
        write_counter(
            &mut out,
            "lemp_queries_total",
            "Query vectors answered across all query requests.",
            get(&stats.queries),
        );
        write_counter(
            &mut out,
            "lemp_quorum_timeouts_total",
            "Edits answered 503 quorum_timeout (durable locally, replication lagged).",
            get(&stats.quorum_timeouts),
        );
        write_counter(
            &mut out,
            "lemp_slow_queries_total",
            "Requests at or above the slow-query threshold, logged to stderr.",
            get(&self.slow_queries),
        );

        // Plan cache.
        write_counter(
            &mut out,
            "lemp_plan_cache_hits_total",
            "Query requests served with a worker's cached plan.",
            get(&self.plan_cache_hits),
        );
        write_counter(
            &mut out,
            "lemp_plan_cache_misses_total",
            "Query plans compiled from scratch.",
            get(&self.plan_cache_misses),
        );
        write_counter(
            &mut out,
            "lemp_plan_refreshes_total",
            "Stale cached plans refreshed after edits (untouched shard segments reused).",
            get(&self.plan_refreshes),
        );

        // Engine telemetry (fed by the TelemetrySink hook).
        let series: Vec<(Vec<(&str, String)>, u64)> = KIND_LABELS
            .iter()
            .zip(&self.engine_requests)
            .map(|(&kind, c)| (vec![("kind", kind.to_string())], get(c)))
            .collect();
        write_counter_family(
            &mut out,
            "lemp_engine_requests_total",
            "Engine executions by query kind.",
            &series,
        );
        write_counter(
            &mut out,
            "lemp_engine_queries_total",
            "Query vectors executed by the engine.",
            get(&self.engine_queries),
        );
        write_counter(
            &mut out,
            "lemp_engine_candidates_total",
            "Full inner products computed during retrieval (the candidate count).",
            get(&self.engine_candidates),
        );
        write_counter(
            &mut out,
            "lemp_engine_pruned_total",
            "(query, probe) pairs pruned before a full inner product.",
            get(&self.engine_pruned),
        );
        write_counter(
            &mut out,
            "lemp_engine_results_total",
            "Result rows produced by the engine.",
            get(&self.engine_results),
        );
        write_gauge(
            &mut out,
            "lemp_engine_retrieval_seconds_total",
            "counter",
            "Cumulative retrieval-phase time.",
            get(&self.engine_retrieval_ns) as f64 / 1e9,
        );
        let series: Vec<(Vec<(&str, String)>, u64)> = ALGO_LABELS
            .iter()
            .zip(&self.method_pairs)
            .map(|(&algo, c)| (vec![("algo", algo.to_string())], get(c)))
            .collect();
        write_counter_family(
            &mut out,
            "lemp_engine_method_pairs_total",
            "(query, bucket) pairs served per bucket algorithm (the method mix).",
            &series,
        );

        // Scrape-time gauges.
        write_gauge(
            &mut out,
            "lemp_uptime_seconds",
            "gauge",
            "Seconds since the server started.",
            gauges.uptime_seconds,
        );
        write_gauge(
            &mut out,
            "lemp_engine_probes",
            "gauge",
            "Live probe vectors.",
            gauges.probes as f64,
        );
        write_gauge(
            &mut out,
            "lemp_engine_buckets",
            "gauge",
            "Probe buckets across all shards.",
            gauges.buckets as f64,
        );
        write_gauge(&mut out, "lemp_engine_shards", "gauge", "Shard count.", gauges.shards as f64);
        let series = vec![
            (vec![("kind", "full".to_string())], gauges.memory_full_bytes as f64),
            (vec![("kind", "quantized".to_string())], gauges.memory_quantized_bytes as f64),
        ];
        write_gauge_family(
            &mut out,
            "lemp_engine_memory_bytes",
            "Probe residency: full-precision vs quantized code+codebook bytes.",
            &series,
        );

        if let Some(wal) = &gauges.wal {
            write_gauge(
                &mut out,
                "lemp_wal_durable_lsn",
                "gauge",
                "Records fsync-durable in the write-ahead log (the durable watermark).",
                wal.records_durable as f64,
            );
            write_gauge(
                &mut out,
                "lemp_wal_records_appended",
                "gauge",
                "Records appended to the write-ahead log.",
                wal.records_appended as f64,
            );
            write_gauge(
                &mut out,
                "lemp_wal_bytes_appended",
                "gauge",
                "Bytes appended to the write-ahead log.",
                wal.bytes_appended as f64,
            );
            write_gauge(&mut out, "lemp_wal_fsyncs", "gauge", "WAL fsyncs.", wal.fsyncs as f64);
            write_gauge(
                &mut out,
                "lemp_wal_segments_created",
                "gauge",
                "WAL segments created.",
                wal.segments_created as f64,
            );
            write_gauge(
                &mut out,
                "lemp_wal_active_segment_bytes",
                "gauge",
                "Bytes in the active WAL segment.",
                wal.active_segment_bytes as f64,
            );
        }

        if let Some(repl) = &gauges.replication {
            write_gauge(
                &mut out,
                "lemp_replication_role",
                "gauge",
                "Replication role: 1 = leader, 2 = follower.",
                repl.role_code as f64,
            );
            write_gauge(
                &mut out,
                "lemp_replication_lag_lsn",
                "gauge",
                "Leader log end minus this follower's durable watermark (0 when caught up).",
                repl.lag_lsn as f64,
            );
            write_gauge(
                &mut out,
                "lemp_replication_fence_epoch",
                "gauge",
                "Fencing epoch of the durable store.",
                repl.fence_epoch as f64,
            );
            write_gauge(
                &mut out,
                "lemp_replication_followers",
                "gauge",
                "Followers seen within the TTL (leaders only; 0 elsewhere).",
                repl.followers.len() as f64,
            );
            if !repl.followers.is_empty() {
                let series: Vec<(Vec<(&str, String)>, f64)> = repl
                    .followers
                    .iter()
                    .map(|f| (vec![("id", f.id.clone())], f.acked_lsn as f64))
                    .collect();
                write_gauge_family(
                    &mut out,
                    "lemp_replication_follower_acked_lsn",
                    "Durable watermark acknowledged by each follower.",
                    &series,
                );
                let series: Vec<(Vec<(&str, String)>, f64)> = repl
                    .followers
                    .iter()
                    .map(|f| (vec![("id", f.id.clone())], f.records as f64))
                    .collect();
                write_gauge_family(
                    &mut out,
                    "lemp_replication_follower_records",
                    "WAL records streamed to each follower.",
                    &series,
                );
            }
        }
        out
    }
}

impl TelemetrySink for Metrics {
    fn on_query(&self, request: &QueryRequest, probes: usize, stats: &RunStats) {
        let add = |c: &AtomicU64, n: u64| {
            c.fetch_add(n, Ordering::Relaxed);
        };
        if let Some(i) = KIND_LABELS.iter().position(|&k| k == request.kind.name()) {
            add(&self.engine_requests[i], 1);
        }
        let c = &stats.counters;
        add(&self.engine_queries, c.queries);
        add(&self.engine_candidates, c.candidates);
        add(&self.engine_results, c.results);
        add(&self.engine_retrieval_ns, c.retrieval_ns);
        let pairs = c.queries.saturating_mul(probes as u64);
        add(&self.engine_pruned, pairs.saturating_sub(c.candidates));
        let mix = &stats.method_mix;
        for (slot, n) in self
            .method_pairs
            .iter()
            .zip([mix.length, mix.coord, mix.incr, mix.ta, mix.tree, mix.l2ap, mix.blsh, mix.quant])
        {
            add(slot, n);
        }
    }
}

/// Point-in-time values sampled by the `/metrics` handler under the engine
/// read lock, rendered as gauges next to the registry's cumulative series.
#[derive(Debug, Default)]
pub struct ScrapeGauges {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Live probe vectors.
    pub probes: u64,
    /// Probe buckets across all shards.
    pub buckets: u64,
    /// Shard count.
    pub shards: u64,
    /// Full-precision probe residency, bytes.
    pub memory_full_bytes: u64,
    /// Quantized probe residency, bytes.
    pub memory_quantized_bytes: u64,
    /// WAL counters (summed across shards), when the backend is durable.
    pub wal: Option<WalStats>,
    /// Replication state, when this server has a replication role.
    pub replication: Option<ReplicationGauges>,
}

/// Replication gauge values for one scrape.
#[derive(Debug, Default)]
pub struct ReplicationGauges {
    /// 1 = leader, 2 = follower.
    pub role_code: u8,
    /// Leader log end minus this store's durable watermark.
    pub lag_lsn: u64,
    /// Fencing epoch of the durable store.
    pub fence_epoch: u64,
    /// Per-follower progress (leaders only).
    pub followers: Vec<FollowerGauge>,
}

/// One follower's progress row at scrape time.
#[derive(Debug)]
pub struct FollowerGauge {
    /// The follower-supplied id (its serving address by default).
    pub id: String,
    /// Its durable watermark as of its latest poll.
    pub acked_lsn: u64,
    /// WAL records streamed to it.
    pub records: u64,
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", inner.join(","))
}

fn write_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    write_header(out, name, "counter", help);
    out.push_str(&format!("{name} {value}\n"));
}

fn write_counter_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(Vec<(&str, String)>, u64)],
) {
    write_header(out, name, "counter", help);
    for (labels, value) in series {
        out.push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }
}

fn write_gauge(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    write_header(out, name, kind, help);
    out.push_str(&format!("{name} {value}\n"));
}

fn write_gauge_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(Vec<(&str, String)>, f64)],
) {
    write_header(out, name, "gauge", help);
    for (labels, value) in series {
        out.push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }
}

fn write_histogram_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(Vec<(&str, String)>, &Histogram)],
) {
    write_header(out, name, "histogram", help);
    for (labels, h) in series {
        let mut cum = 0u64;
        let bins = h.bin_counts();
        for (i, n) in bins.iter().enumerate() {
            cum += n;
            let le = match h.bounds().get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let mut all = labels.clone();
            all.push(("le", le));
            out.push_str(&format!("{name}_bucket{} {cum}\n", render_labels(&all)));
        }
        let labels = render_labels(labels);
        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn concurrent_recording_sums_exactly() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        // Integer-valued samples: f64 addition is exact.
                        h.observe(((i + t) % 128) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        let expect: f64 =
            (0..8u64).map(|t| (0..10_000u64).map(|i| ((i + t) % 128) as f64).sum::<f64>()).sum();
        assert_eq!(h.sum(), expect, "concurrent f64 sum must lose no sample");
        assert_eq!(h.bin_counts().iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn boundary_values_land_in_the_correct_le_bin() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5); // le="1"
        h.observe(1.0); // le="1" — bounds are inclusive
        h.observe(1.000_001); // le="2"
        h.observe(2.0); // le="2"
        h.observe(2.5); // +Inf
        assert_eq!(h.bin_counts(), vec![2, 2, 1]);
        assert_eq!(h.count(), 5);
        // NaN still counts (into +Inf), keeping _count == calls.
        h.observe(f64::NAN);
        assert_eq!(h.bin_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(3.0);
        }
        // Rank 50 sits exactly at the end of the first bucket.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-9);
        // Rank 100 is the end of the (2, 4] bucket.
        assert!((h.quantile(1.0) - 4.0).abs() < 1e-9);
        // Median of the upper half interpolates inside (2, 4].
        let p75 = h.quantile(0.75);
        assert!(p75 > 2.0 && p75 <= 4.0, "{p75}");
        // Overflow-only samples clamp to the largest finite bound.
        let o = Histogram::new(&[1.0]);
        o.observe(99.0);
        assert_eq!(o.quantile(0.5), 1.0);
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_nan());
    }

    /// A minimal Prometheus text parser: family TYPE lines plus samples,
    /// enough to round-trip what the renderer writes.
    struct Parsed {
        types: HashMap<String, String>,
        samples: HashMap<String, f64>,
    }

    fn parse_exposition(text: &str) -> Parsed {
        let mut types = HashMap::new();
        let mut samples = HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_ascii_whitespace();
                let name = it.next().expect("TYPE has a name").to_string();
                let kind = it.next().expect("TYPE has a kind").to_string();
                types.insert(name, kind);
            } else if !line.starts_with('#') && !line.is_empty() {
                let (key, value) = line.rsplit_once(' ').expect("sample has a value");
                let value: f64 = value.parse().expect("sample value parses");
                samples.insert(key.to_string(), value);
            }
        }
        Parsed { types, samples }
    }

    #[test]
    fn exposition_output_round_trips_through_a_parser() {
        let metrics = Metrics::default();
        metrics.observe_request(Endpoint::TopK, 0.003, 512);
        metrics.observe_request(Endpoint::TopK, 0.3, 2048);
        metrics.observe_request(Endpoint::Healthz, 0.000_05, 0);
        metrics.plan_cache_hits.fetch_add(3, Ordering::Relaxed);
        let stats = crate::stats::ServerStats::default();
        crate::stats::ServerStats::add(&stats.requests, 3);
        let gauges = ScrapeGauges {
            uptime_seconds: 12.5,
            probes: 64,
            buckets: 4,
            shards: 1,
            memory_full_bytes: 4096,
            memory_quantized_bytes: 0,
            wal: Some(WalStats { records_durable: 7, ..Default::default() }),
            replication: Some(ReplicationGauges {
                role_code: 1,
                lag_lsn: 0,
                fence_epoch: 2,
                followers: vec![FollowerGauge {
                    id: "127.0.0.1:9\"x".into(),
                    acked_lsn: 7,
                    records: 3,
                }],
            }),
        };
        let text = metrics.render(&stats, &gauges);
        let parsed = parse_exposition(&text);

        assert_eq!(
            parsed.types.get("lemp_http_request_duration_seconds").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(
            parsed.types.get("lemp_engine_candidates_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(parsed.types.get("lemp_wal_durable_lsn").map(String::as_str), Some("gauge"));

        // Histogram invariants: cumulative non-decreasing buckets, +Inf
        // bucket equals _count, sum matches what went in.
        let bucket = |le: &str| {
            parsed.samples[&format!(
                "lemp_http_request_duration_seconds_bucket{{path=\"/top-k\",le=\"{le}\"}}"
            )]
        };
        assert_eq!(bucket("0.005"), 1.0);
        assert_eq!(bucket("0.5"), 2.0);
        assert_eq!(bucket("+Inf"), 2.0);
        let mut prev = 0.0;
        for b in DURATION_BOUNDS {
            let cur = bucket(&b.to_string());
            assert!(cur >= prev, "buckets must be cumulative");
            prev = cur;
        }
        assert_eq!(
            parsed.samples["lemp_http_request_duration_seconds_count{path=\"/top-k\"}"],
            2.0
        );
        let sum = parsed.samples["lemp_http_request_duration_seconds_sum{path=\"/top-k\"}"];
        assert!((sum - 0.303).abs() < 1e-12, "{sum}");

        assert_eq!(parsed.samples["lemp_http_requests_total"], 3.0);
        assert_eq!(parsed.samples["lemp_plan_cache_hits_total"], 3.0);
        assert_eq!(parsed.samples["lemp_wal_durable_lsn"], 7.0);
        assert_eq!(parsed.samples["lemp_replication_role"], 1.0);
        assert_eq!(parsed.samples["lemp_replication_fence_epoch"], 2.0);
        // Label values escape quotes.
        assert_eq!(
            parsed.samples["lemp_replication_follower_acked_lsn{id=\"127.0.0.1:9\\\"x\"}"],
            7.0
        );
        // Every method-mix label is always present, QUANT included.
        for algo in ALGO_LABELS {
            let key = format!("lemp_engine_method_pairs_total{{algo=\"{algo}\"}}");
            assert_eq!(parsed.samples[&key], 0.0, "{key}");
        }
        // Every sample line belongs to a declared family.
        for key in parsed.samples.keys() {
            let name = key.split('{').next().unwrap();
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| parsed.types.contains_key(*f))
                .unwrap_or(name);
            assert!(parsed.types.contains_key(family), "undeclared family for {key}");
        }
    }

    #[test]
    fn telemetry_sink_accumulates_run_stats() {
        use lemp_core::{MethodMix, RetrievalCounters};
        let metrics = Metrics::default();
        let stats = RunStats {
            counters: RetrievalCounters {
                candidates: 40,
                queries: 2,
                results: 10,
                retrieval_ns: 1_000,
                ..Default::default()
            },
            method_mix: MethodMix { length: 3, quant: 2, ..Default::default() },
            ..Default::default()
        };
        let request = QueryRequest::top_k(5);
        metrics.on_query(&request, 100, &stats);
        metrics.on_query(&request, 100, &stats);
        assert_eq!(metrics.engine_queries.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.engine_candidates.load(Ordering::Relaxed), 80);
        // 2 × (2 queries × 100 probes − 40 candidates).
        assert_eq!(metrics.engine_pruned.load(Ordering::Relaxed), 320);
        assert_eq!(metrics.method_pairs_of("LENGTH"), 6);
        assert_eq!(metrics.method_pairs_of("QUANT"), 4);
        assert_eq!(metrics.method_pairs_of("COORD"), 0);
        let text = metrics.render(&crate::stats::ServerStats::default(), &ScrapeGauges::default());
        assert!(text.contains("lemp_engine_requests_total{kind=\"top-k\"} 2"));
        assert!(text.contains("lemp_engine_method_pairs_total{algo=\"QUANT\"} 4"));
    }
}
