//! Lock-free service counters, exported by `GET /stats`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{obj, Json};

/// Monotonic counters of one server instance. All counters use relaxed
/// ordering — they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests fully read and routed (any endpoint, any outcome).
    pub requests: AtomicU64,
    /// `POST /top-k` query requests answered.
    pub topk_requests: AtomicU64,
    /// `POST /above-theta` query requests answered.
    pub above_requests: AtomicU64,
    /// `POST /probes` edit requests answered.
    pub probe_requests: AtomicU64,
    /// Engine calls made for query endpoints (≤ query requests thanks to
    /// micro-batching).
    pub batches: AtomicU64,
    /// Query requests that were answered as part of a multi-request batch.
    pub batched_requests: AtomicU64,
    /// Query vectors answered across all query requests.
    pub queries: AtomicU64,
    /// Connections shed with `503` because the accept queue was full.
    pub shed: AtomicU64,
    /// Requests rejected with a 4xx (parse/validation failures).
    pub client_errors: AtomicU64,
    /// Requests failed with a 5xx.
    pub server_errors: AtomicU64,
    /// `POST /probes` requests answered `503 quorum_timeout` because too
    /// few followers acknowledged in time (the edit is still durable
    /// locally — this counts delayed replication, not lost data).
    pub quorum_timeouts: AtomicU64,
}

impl ServerStats {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot as the `/stats` JSON object.
    pub fn snapshot(&self) -> Json {
        let get = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        obj(vec![
            ("requests", get(&self.requests)),
            ("topk_requests", get(&self.topk_requests)),
            ("above_requests", get(&self.above_requests)),
            ("probe_requests", get(&self.probe_requests)),
            ("batches", get(&self.batches)),
            ("batched_requests", get(&self.batched_requests)),
            ("queries", get(&self.queries)),
            ("shed", get(&self.shed)),
            ("client_errors", get(&self.client_errors)),
            ("server_errors", get(&self.server_errors)),
            ("quorum_timeouts", get(&self.quorum_timeouts)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_all_counters() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.requests);
        ServerStats::add(&stats.queries, 7);
        let snap = stats.snapshot();
        assert_eq!(snap.get("requests").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("queries").unwrap().as_u64(), Some(7));
        assert_eq!(snap.get("shed").unwrap().as_u64(), Some(0));
        for key in ["topk_requests", "above_requests", "probe_requests", "batches"] {
            assert!(snap.get(key).is_some(), "missing {key}");
        }
    }
}
