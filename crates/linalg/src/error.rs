//! Error type shared by the substrate.

use std::fmt;

/// Errors raised by vector-store construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The flat data buffer cannot be split into whole `dim`-sized rows.
    ShapeMismatch {
        /// Total number of scalars supplied.
        len: usize,
        /// Requested dimensionality.
        dim: usize,
    },
    /// A dimensionality of zero was requested.
    ZeroDim,
    /// Two stores that must agree on dimensionality do not.
    DimMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A non-finite value (NaN or infinity) was found at the given flat index.
    NonFinite {
        /// Flat index of the offending scalar.
        index: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { len, dim } => {
                write!(f, "buffer of {len} scalars is not divisible into rows of dim {dim}")
            }
            LinalgError::ZeroDim => write!(f, "vector dimensionality must be positive"),
            LinalgError::DimMismatch { left, right } => {
                write!(f, "dimensionality mismatch: {left} vs {right}")
            }
            LinalgError::NonFinite { index } => {
                write!(f, "non-finite value at flat index {index}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch { len: 7, dim: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = LinalgError::DimMismatch { left: 2, right: 5 };
        assert!(e.to_string().contains("mismatch"));
        assert!(LinalgError::ZeroDim.to_string().contains("positive"));
        assert!(LinalgError::NonFinite { index: 4 }.to_string().contains('4'));
    }
}
