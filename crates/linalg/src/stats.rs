//! Scalar summary statistics.
//!
//! Used to validate synthetic datasets against the paper's Table 1 (which
//! characterizes each dataset by the coefficient of variation of its vector
//! lengths and its fraction of non-zero entries) and by the tuner to reason
//! about sampled timings.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Coefficient of variation `σ/μ`; 0 when the mean is 0.
///
/// Table 1 of the paper reports the CoV of the vector lengths of each factor
/// matrix; it is the statistic that predicts how effective LEMP's bucket
/// pruning will be (Sec. 3.2: "the more skewed the length distribution, the
/// more probe buckets can be pruned").
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// Fraction of entries that are non-zero; 0 for an empty slice.
pub fn nonzero_fraction(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|x| **x != 0.0).count() as f64 / xs.len() as f64
}

/// Empirical quantile via linear interpolation on the sorted copy.
/// `q` is clamped to [0, 1]. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile_of_sorted(&sorted, q)
}

/// Quantile of an already ascending-sorted slice (no copy).
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn mean_and_std_dev_basics() {
        approx(mean(&[1.0, 2.0, 3.0]), 2.0);
        approx(mean(&[]), 0.0);
        approx(std_dev(&[2.0, 2.0, 2.0]), 0.0);
        approx(std_dev(&[1.0, 3.0]), 1.0);
        approx(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn cov_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| x * 17.0).collect();
        approx(cov(&a), cov(&b));
        approx(cov(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn nonzero_fraction_counts() {
        approx(nonzero_fraction(&[0.0, 1.0, 0.0, 2.0]), 0.5);
        approx(nonzero_fraction(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        approx(quantile(&xs, 0.0), 1.0);
        approx(quantile(&xs, 1.0), 4.0);
        approx(quantile(&xs, 0.5), 2.5);
        approx(quantile(&xs, 1.0 / 3.0), 2.0);
        approx(quantile(&[], 0.5), 0.0);
        // out-of-range q clamps
        approx(quantile(&xs, 2.0), 4.0);
        approx(quantile(&xs, -1.0), 1.0);
    }
}
