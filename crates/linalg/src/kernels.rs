//! Hot numeric kernels: inner products, norms, normalization.
//!
//! These are the innermost loops of every algorithm in the workspace (the
//! paper estimates ~100 ns per inner product on its hardware; everything else
//! is pruning work to avoid calling these). The portable implementations are
//! straight-line slice code with manually unrolled independent accumulators
//! so that rustc auto-vectorizes them; the reducing kernels (`dot`,
//! `dist_sq`) and `axpy` additionally dispatch at runtime to the explicit
//! AVX2 versions in [`crate::simd`], which produce **bit-identical** results
//! (same per-lane operation order, no FMA) — enabling SIMD never changes a
//! single produced value anywhere in the workspace.

use crate::simd;

/// Inner product `a · b` of two equally long slices.
///
/// Uses four independent accumulators so the floating-point reduction does
/// not serialize on a single dependency chain (enables SIMD + pipelining);
/// dispatches to the bit-identical AVX2 kernel when available.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is used (callers in this workspace always pass
/// equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    simd::dot(a, b)
}

/// Squared Euclidean norm `‖v‖²`.
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    dot(v, v)
}

/// Euclidean norm `‖v‖`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    simd::dist_sq(a, b)
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Scales `v` in place by `s`.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Normalizes `v` in place to unit length and returns its original length.
///
/// A zero vector is left untouched and `0.0` is returned; callers treat
/// zero-length vectors as never matching (their inner product with anything
/// is 0, which is below any positive threshold).
#[inline]
pub fn normalize(v: &mut [f64]) -> f64 {
    let len = norm(v);
    if len > 0.0 {
        scale(v, 1.0 / len);
    }
    len
}

/// `out = a + s·b` (vector add with scale), used by the SGD trainer.
#[inline]
pub fn axpy(s: f64, b: &[f64], a: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    simd::axpy(s, b, a);
}

/// Cosine of the angle between `a` and `b`; 0 if either vector is zero.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn dot_matches_reference_for_all_tail_lengths() {
        // Exercise every `n mod 4` branch of the unrolled loop.
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            approx(dot(&a, &b), expect);
        }
    }

    #[test]
    fn dot_empty_is_zero() {
        approx(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        approx(norm(&[3.0, 4.0]), 5.0);
        approx(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dist_and_dist_sq_agree() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        approx(dist_sq(&a, &b), 25.0);
        approx(dist(&a, &b), 5.0);
    }

    #[test]
    fn normalize_returns_length_and_unit_result() {
        let mut v = vec![3.0, 0.0, 4.0];
        let len = normalize(&mut v);
        approx(len, 5.0);
        approx(norm(&v), 1.0);
        approx(v[0], 0.6);
        approx(v[2], 0.8);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        approx(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut a);
        assert_eq!(a, vec![7.0, -1.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        approx(cosine(&[1.0, 0.0], &[5.0, 0.0]), 1.0);
        approx(cosine(&[1.0, 0.0], &[0.0, 2.0]), 0.0);
        approx(cosine(&[1.0, 0.0], &[-3.0, 0.0]), -1.0);
        approx(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }
}
