//! Hot numeric kernels: inner products, norms, normalization.
//!
//! These are the innermost loops of every algorithm in the workspace (the
//! paper estimates ~100 ns per inner product on its hardware; everything else
//! is pruning work to avoid calling these). The portable implementations are
//! straight-line slice code with manually unrolled independent accumulators
//! so that rustc auto-vectorizes them; the reducing kernels (`dot`,
//! `dist_sq`) and `axpy` additionally dispatch at runtime to the explicit
//! AVX2 versions in [`crate::simd`], which produce **bit-identical** results
//! (same per-lane operation order, no FMA) — enabling SIMD never changes a
//! single produced value anywhere in the workspace.

use crate::simd;

/// Inner product `a · b` of two equally long slices.
///
/// Uses four independent accumulators so the floating-point reduction does
/// not serialize on a single dependency chain (enables SIMD + pipelining);
/// dispatches to the bit-identical AVX2 kernel when available.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is used (callers in this workspace always pass
/// equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    simd::dot(a, b)
}

/// Squared Euclidean norm `‖v‖²`.
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    dot(v, v)
}

/// Euclidean norm `‖v‖`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    simd::dist_sq(a, b)
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Scales `v` in place by `s`.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Normalizes `v` in place to unit length and returns its original length.
///
/// A zero vector is left untouched and `0.0` is returned; callers treat
/// zero-length vectors as never matching (their inner product with anything
/// is 0, which is below any positive threshold).
#[inline]
pub fn normalize(v: &mut [f64]) -> f64 {
    let len = norm(v);
    if len > 0.0 {
        scale(v, 1.0 / len);
    }
    len
}

/// `out = a + s·b` (vector add with scale), used by the SGD trainer.
#[inline]
pub fn axpy(s: f64, b: &[f64], a: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    simd::axpy(s, b, a);
}

/// LUT gather-accumulate scan over `u8` code indices — the scoring kernel
/// of the quantized bucket representation.
///
/// `codes` holds `m` subspace rows of `n` probe codes each, subspace-major
/// (`codes[s·n + i]` is probe `i`'s code in subspace `s`); `lut` holds `m`
/// rows of `k` table entries (`lut[s·k + c]` is the query's inner product
/// with centroid `c` of subspace `s`). Probe `i`'s approximate score,
/// written to `out[i]`, is the sum of its `m` table entries, accumulated in
/// increasing subspace order. Dispatches to a bit-identical AVX2 gather
/// kernel (four probes per iteration, one per lane) when available.
///
/// Code values `≥ k` are clamped to `k − 1` on every path — hostile codes
/// degrade scores, never memory safety.
///
/// # Panics
/// If `k == 0`, `codes.len() != m·n`, `lut.len() != m·k` or `out.len() < n`.
#[inline]
pub fn lut_scan_u8(codes: &[u8], lut: &[f64], n: usize, m: usize, k: usize, out: &mut [f64]) {
    assert!(k >= 1, "lut_scan: k must be positive");
    assert_eq!(codes.len(), m * n, "lut_scan: codes must hold m·n entries");
    assert_eq!(lut.len(), m * k, "lut_scan: lut must hold m·k entries");
    assert!(out.len() >= n, "lut_scan: out must hold n scores");
    simd::lut_scan_u8(codes, lut, n, m, k, out);
}

/// LUT gather-accumulate scan over `u16` code indices (codebooks wider than
/// 256 centroids); same contract as [`lut_scan_u8`].
///
/// # Panics
/// As in [`lut_scan_u8`].
#[inline]
pub fn lut_scan_u16(codes: &[u16], lut: &[f64], n: usize, m: usize, k: usize, out: &mut [f64]) {
    assert!(k >= 1, "lut_scan: k must be positive");
    assert_eq!(codes.len(), m * n, "lut_scan: codes must hold m·n entries");
    assert_eq!(lut.len(), m * k, "lut_scan: lut must hold m·k entries");
    assert!(out.len() >= n, "lut_scan: out must hold n scores");
    simd::lut_scan_u16(codes, lut, n, m, k, out);
}

/// Cosine of the angle between `a` and `b`; 0 if either vector is zero.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn dot_matches_reference_for_all_tail_lengths() {
        // Exercise every `n mod 4` branch of the unrolled loop.
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64).collect();
            let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            approx(dot(&a, &b), expect);
        }
    }

    #[test]
    fn dot_empty_is_zero() {
        approx(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        approx(norm(&[3.0, 4.0]), 5.0);
        approx(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dist_and_dist_sq_agree() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        approx(dist_sq(&a, &b), 25.0);
        approx(dist(&a, &b), 5.0);
    }

    #[test]
    fn normalize_returns_length_and_unit_result() {
        let mut v = vec![3.0, 0.0, 4.0];
        let len = normalize(&mut v);
        approx(len, 5.0);
        approx(norm(&v), 1.0);
        approx(v[0], 0.6);
        approx(v[2], 0.8);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        approx(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut a);
        assert_eq!(a, vec![7.0, -1.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        approx(cosine(&[1.0, 0.0], &[5.0, 0.0]), 1.0);
        approx(cosine(&[1.0, 0.0], &[0.0, 2.0]), 0.0);
        approx(cosine(&[1.0, 0.0], &[-3.0, 0.0]), -1.0);
        approx(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn lut_scan_sums_one_table_entry_per_subspace() {
        // 2 subspaces, 4 centroids, 3 probes; scores follow by hand.
        let lut = [10.0, 20.0, 30.0, 40.0, 1.0, 2.0, 3.0, 4.0];
        let codes = [0u8, 3, 1, /* subspace 1 */ 2, 0, 3];
        let mut out = [0.0; 3];
        lut_scan_u8(&codes, &lut, 3, 2, 4, &mut out);
        assert_eq!(out, [13.0, 41.0, 24.0]);
        let codes16: Vec<u16> = codes.iter().map(|&c| c as u16).collect();
        let mut out16 = [0.0; 3];
        lut_scan_u16(&codes16, &lut, 3, 2, 4, &mut out16);
        assert_eq!(out16, [13.0, 41.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "codes must hold")]
    fn lut_scan_rejects_misshapen_codes() {
        let mut out = [0.0; 2];
        lut_scan_u8(&[0u8; 3], &[0.0; 4], 2, 2, 2, &mut out);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }
}
