//! Contiguous row-major storage for a set of equal-dimension vectors.

use crate::error::LinalgError;
use crate::kernels;

/// A set of `len` vectors of dimensionality `dim`, stored contiguously
/// row-major (`vector(i)` is `data[i*dim .. (i+1)*dim]`).
///
/// This is the in-memory representation of one factor matrix *transpose*: the
/// paper's `Q` is `r × m`, we store `QT` as an `m × r` [`VectorStore`] so that
/// query vectors are scanned sequentially (the access pattern Sec. 3.2 of the
/// paper relies on for prefetching).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorStore {
    data: Vec<f64>,
    dim: usize,
}

impl VectorStore {
    /// Creates a store from a flat row-major buffer.
    ///
    /// # Errors
    /// [`LinalgError::ZeroDim`] if `dim == 0`, [`LinalgError::ShapeMismatch`]
    /// if `data.len()` is not a multiple of `dim`, and
    /// [`LinalgError::NonFinite`] if any value is NaN or infinite.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Result<Self, LinalgError> {
        if dim == 0 {
            return Err(LinalgError::ZeroDim);
        }
        if !data.len().is_multiple_of(dim) {
            return Err(LinalgError::ShapeMismatch { len: data.len(), dim });
        }
        if let Some(index) = data.iter().position(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite { index });
        }
        Ok(Self { data, dim })
    }

    /// Creates a store from per-vector rows; all rows must share a length.
    ///
    /// # Errors
    /// Same conditions as [`VectorStore::from_flat`]; additionally
    /// [`LinalgError::DimMismatch`] if rows disagree on length and
    /// [`LinalgError::ZeroDim`] if `rows` is empty (the dimensionality would
    /// be unknown).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let Some(first) = rows.first() else {
            return Err(LinalgError::ZeroDim);
        };
        let dim = first.len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(LinalgError::DimMismatch { left: dim, right: row.len() });
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(data, dim)
    }

    /// An empty store of the given dimensionality.
    ///
    /// # Errors
    /// [`LinalgError::ZeroDim`] if `dim == 0`.
    pub fn empty(dim: usize) -> Result<Self, LinalgError> {
        Self::from_flat(Vec::new(), dim)
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` if the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `r` of every vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of vector `i`.
    ///
    /// # Panics
    /// If `i >= self.len()`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable borrow of vector `i`.
    ///
    /// # Panics
    /// If `i >= self.len()`.
    #[inline]
    pub fn vector_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over vectors in index order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Appends a vector.
    ///
    /// # Errors
    /// [`LinalgError::DimMismatch`] if `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        if v.len() != self.dim {
            return Err(LinalgError::DimMismatch { left: self.dim, right: v.len() });
        }
        self.data.extend_from_slice(v);
        Ok(())
    }

    /// Inserts a vector at position `i`, shifting subsequent vectors up.
    ///
    /// Used by dynamic index maintenance to keep bucket rows length-sorted;
    /// `O(len)` like `Vec::insert`.
    ///
    /// # Errors
    /// [`LinalgError::DimMismatch`] if `v.len() != self.dim()`.
    ///
    /// # Panics
    /// If `i > self.len()`.
    pub fn insert_row(&mut self, i: usize, v: &[f64]) -> Result<(), LinalgError> {
        if v.len() != self.dim {
            return Err(LinalgError::DimMismatch { left: self.dim, right: v.len() });
        }
        assert!(i <= self.len(), "insert position {i} out of bounds (len {})", self.len());
        let at = i * self.dim;
        self.data.splice(at..at, v.iter().copied());
        Ok(())
    }

    /// Removes the vector at position `i`, shifting subsequent vectors down;
    /// `O(len)` like `Vec::remove`.
    ///
    /// # Panics
    /// If `i >= self.len()`.
    pub fn remove_row(&mut self, i: usize) {
        assert!(i < self.len(), "remove position {i} out of bounds (len {})", self.len());
        let at = i * self.dim;
        self.data.drain(at..at + self.dim);
    }

    /// Euclidean length of every vector, in index order.
    pub fn lengths(&self) -> Vec<f64> {
        self.iter().map(kernels::norm).collect()
    }

    /// Inner product between vector `i` of `self` and vector `j` of `other`.
    ///
    /// # Panics
    /// If indexes are out of range or the dimensionalities differ (debug).
    #[inline]
    pub fn dot_between(&self, i: usize, other: &VectorStore, j: usize) -> f64 {
        kernels::dot(self.vector(i), other.vector(j))
    }

    /// A new store containing the selected vectors, in the order given.
    ///
    /// # Panics
    /// If any index is out of range.
    pub fn select(&self, indexes: &[usize]) -> VectorStore {
        let mut data = Vec::with_capacity(indexes.len() * self.dim);
        for &i in indexes {
            data.extend_from_slice(self.vector(i));
        }
        VectorStore { data, dim: self.dim }
    }

    /// A new store with every vector negated (`v ↦ −v`).
    ///
    /// IEEE-754 negation is exact, so `negated().dot(..) == -dot(..)` bit
    /// for bit; this is what makes the sign-flipped second pass of
    /// `abs_above_theta` exact.
    pub fn negated(&self) -> VectorStore {
        VectorStore { data: self.data.iter().map(|&x| -x).collect(), dim: self.dim }
    }

    /// Splits into `(lengths, directions)`: per-vector Euclidean lengths and
    /// a store of unit vectors (zero vectors stay zero).
    ///
    /// This is the paper's length/direction decomposition (Sec. 3.1) and the
    /// first step of LEMP preprocessing.
    pub fn decompose(&self) -> (Vec<f64>, VectorStore) {
        let mut directions = self.clone();
        let mut lengths = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            lengths.push(kernels::normalize(directions.vector_mut(i)));
        }
        (lengths, directions)
    }

    /// Full product row: inner product of `q` with every vector, appended to
    /// `out`. This is the Naive inner loop; kept here so the substrate owns
    /// all O(n·r) scans.
    pub fn dots_with(&self, q: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(q.len(), self.dim);
        out.clear();
        out.reserve(self.len());
        for p in self.iter() {
            out.push(kernels::dot(q, p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_3x2() -> VectorStore {
        VectorStore::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2).unwrap()
    }

    #[test]
    fn negated_flips_every_sign_exactly() {
        let s = store_3x2();
        let n = s.negated();
        assert_eq!(n.len(), 3);
        assert_eq!(n.vector(1), &[-3.0, -4.0]);
        // Inner products flip sign bit-exactly.
        let q = [0.3, -0.7];
        for i in 0..s.len() {
            let a = kernels::dot(&q, s.vector(i));
            let b = kernels::dot(&q, n.vector(i));
            assert_eq!((-a).to_bits(), b.to_bits());
        }
        // Lengths are unchanged.
        assert_eq!(s.lengths(), n.lengths());
    }

    #[test]
    fn from_flat_validates_shape() {
        assert_eq!(
            VectorStore::from_flat(vec![1.0; 5], 2),
            Err(LinalgError::ShapeMismatch { len: 5, dim: 2 })
        );
        assert_eq!(VectorStore::from_flat(vec![], 0), Err(LinalgError::ZeroDim));
        assert_eq!(
            VectorStore::from_flat(vec![1.0, f64::NAN], 2),
            Err(LinalgError::NonFinite { index: 1 })
        );
        assert_eq!(
            VectorStore::from_flat(vec![f64::INFINITY, 1.0], 2),
            Err(LinalgError::NonFinite { index: 0 })
        );
    }

    #[test]
    fn from_rows_validates_consistency() {
        let ok = VectorStore::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.dim(), 2);
        assert!(matches!(
            VectorStore::from_rows(&[vec![1.0], vec![2.0, 3.0]]),
            Err(LinalgError::DimMismatch { .. })
        ));
        assert!(matches!(VectorStore::from_rows(&[]), Err(LinalgError::ZeroDim)));
    }

    #[test]
    fn indexing_and_iteration() {
        let s = store_3x2();
        assert_eq!(s.len(), 3);
        assert_eq!(s.vector(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = s.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
        assert!(!s.is_empty());
        assert!(VectorStore::empty(4).unwrap().is_empty());
    }

    #[test]
    fn push_checks_dim() {
        let mut s = store_3x2();
        s.push(&[7.0, 8.0]).unwrap();
        assert_eq!(s.len(), 4);
        assert!(matches!(s.push(&[1.0]), Err(LinalgError::DimMismatch { .. })));
    }

    #[test]
    fn insert_row_shifts_and_validates() {
        let mut s = store_3x2();
        s.insert_row(1, &[9.0, 9.5]).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.vector(0), &[1.0, 2.0]);
        assert_eq!(s.vector(1), &[9.0, 9.5]);
        assert_eq!(s.vector(2), &[3.0, 4.0]);
        // boundary positions
        s.insert_row(0, &[0.0, 0.0]).unwrap();
        assert_eq!(s.vector(0), &[0.0, 0.0]);
        let end = s.len();
        s.insert_row(end, &[7.0, 7.0]).unwrap();
        assert_eq!(s.vector(s.len() - 1), &[7.0, 7.0]);
        assert!(matches!(s.insert_row(0, &[1.0]), Err(LinalgError::DimMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_row_rejects_far_position() {
        let mut s = store_3x2();
        let _ = s.insert_row(10, &[1.0, 2.0]);
    }

    #[test]
    fn remove_row_shifts_down() {
        let mut s = store_3x2();
        s.remove_row(1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.vector(0), &[1.0, 2.0]);
        assert_eq!(s.vector(1), &[5.0, 6.0]);
        s.remove_row(0);
        s.remove_row(0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_row_rejects_bad_position() {
        let mut s = store_3x2();
        s.remove_row(3);
    }

    #[test]
    fn insert_then_remove_roundtrips() {
        let mut s = store_3x2();
        let before = s.clone();
        s.insert_row(2, &[42.0, 43.0]).unwrap();
        s.remove_row(2);
        assert_eq!(s, before);
    }

    #[test]
    fn lengths_are_euclidean() {
        let s = VectorStore::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        let l = s.lengths();
        assert!((l[0] - 5.0).abs() < 1e-12);
        assert_eq!(l[1], 0.0);
    }

    #[test]
    fn select_reorders_and_duplicates() {
        let s = store_3x2();
        let t = s.select(&[2, 0, 0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.vector(0), &[5.0, 6.0]);
        assert_eq!(t.vector(1), &[1.0, 2.0]);
        assert_eq!(t.vector(2), &[1.0, 2.0]);
    }

    #[test]
    fn decompose_roundtrips() {
        let s = VectorStore::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0], vec![-2.0, 0.0]]).unwrap();
        let (lengths, dirs) = s.decompose();
        assert!((lengths[0] - 5.0).abs() < 1e-12);
        assert_eq!(lengths[1], 0.0);
        assert!((lengths[2] - 2.0).abs() < 1e-12);
        // length * direction reconstructs the vector
        for (i, &len) in lengths.iter().enumerate() {
            for f in 0..s.dim() {
                let rebuilt = len * dirs.vector(i)[f];
                assert!((rebuilt - s.vector(i)[f]).abs() < 1e-12);
            }
        }
        // directions are unit (or zero)
        assert!((crate::kernels::norm(dirs.vector(0)) - 1.0).abs() < 1e-12);
        assert_eq!(crate::kernels::norm(dirs.vector(1)), 0.0);
    }

    #[test]
    fn dots_with_computes_product_row() {
        let s = store_3x2();
        let mut out = Vec::new();
        s.dots_with(&[1.0, -1.0], &mut out);
        assert_eq!(out, vec![-1.0, -1.0, -1.0]);
        // reuse of the buffer clears previous content
        s.dots_with(&[0.0, 1.0], &mut out);
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn dot_between_stores() {
        let a = store_3x2();
        let b = VectorStore::from_rows(&[vec![10.0, 0.0]]).unwrap();
        assert_eq!(a.dot_between(1, &b, 0), 30.0);
    }
}
