//! Explicit SIMD kernels (x86-64 AVX2) with **bit-identical** results.
//!
//! The scalar kernels in [`crate::kernels`] use four independent
//! accumulators so that lane `i` sums exactly the elements `4k + i` in
//! increasing `k`, and the final reduction is `(s0 + s1) + (s2 + s3) + tail`.
//! The AVX2 kernels here perform *the same operations in the same order*:
//! one 4-lane vector accumulator where lane `i` plays the role of `s_i`,
//! multiplies and adds kept separate (no FMA — fusing would skip the
//! intermediate rounding and change results), and the identical horizontal
//! reduction at the end. Per-lane AVX2 arithmetic is ordinary IEEE-754
//! double arithmetic, so the SIMD results are equal **bit for bit** to the
//! scalar ones — verified exhaustively and property-tested in this module.
//!
//! Bit-identity matters in this workspace: exact LEMP variants are tested
//! to return byte-identical results to the Naive baseline, and the dynamic
//! maintenance engine looks vectors up by the bit pattern of their stored
//! lengths. Because the dispatched kernels never change any produced value,
//! enabling SIMD is purely a throughput decision.
//!
//! This is the only module in the workspace containing `unsafe` code; every
//! block is a call to `#[target_feature(enable = "avx2")]` functions guarded
//! by a cached runtime CPUID check ([`active`]).

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction sets the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable unrolled slice code (works everywhere).
    Scalar,
    /// 256-bit AVX2 double-precision kernels (x86-64 only).
    Avx2,
}

const ISA_UNKNOWN: u8 = 0;
const ISA_SCALAR: u8 = 1;
const ISA_AVX2: u8 = 2;

static ACTIVE: AtomicU8 = AtomicU8::new(ISA_UNKNOWN);

/// Returns the instruction set the kernels currently dispatch to.
///
/// Detection runs once (CPUID via `is_x86_feature_detected!`) and is cached
/// in a relaxed atomic; subsequent calls are a load and a compare. The
/// environment variable `LEMP_FORCE_ISA` (`scalar` or `avx2`) overrides
/// autodetection — this is how CI exercises the scalar fallbacks on
/// AVX2-capable runners, where compiling for a baseline target CPU alone
/// would change nothing (dispatch happens at run time, not compile time).
#[inline]
pub fn active() -> Isa {
    match ACTIVE.load(Ordering::Relaxed) {
        ISA_SCALAR => Isa::Scalar,
        ISA_AVX2 => Isa::Avx2,
        _ => detect(),
    }
}

#[cold]
fn detect() -> Isa {
    let isa = match std::env::var("LEMP_FORCE_ISA").as_deref() {
        Ok("scalar") => Isa::Scalar,
        Ok("avx2") => {
            assert!(avx2_supported(), "LEMP_FORCE_ISA=avx2 but the CPU lacks avx2");
            Isa::Avx2
        }
        _ => {
            if avx2_supported() {
                Isa::Avx2
            } else {
                Isa::Scalar
            }
        }
    };
    ACTIVE.store(isa_code(isa), Ordering::Relaxed);
    isa
}

fn isa_code(isa: Isa) -> u8 {
    match isa {
        Isa::Scalar => ISA_SCALAR,
        Isa::Avx2 => ISA_AVX2,
    }
}

/// Whether this CPU can run the AVX2 kernels.
#[inline]
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Forces the dispatcher to `isa` and returns the previously active set.
///
/// Intended for benchmarks (measuring the scalar/SIMD gap on the same
/// machine) and for tests that must exercise both paths. Requesting
/// [`Isa::Avx2`] on a CPU without AVX2 is a caller bug and panics.
pub fn override_isa(isa: Isa) -> Isa {
    if isa == Isa::Avx2 {
        assert!(avx2_supported(), "cannot force AVX2 kernels: CPU lacks avx2");
    }
    let prev = active();
    ACTIVE.store(isa_code(isa), Ordering::Relaxed);
    prev
}

/// Vectors shorter than this stay on the scalar path: the call into the
/// `target_feature` function (which cannot be inlined into generic callers)
/// costs more than it saves below roughly two SIMD chunks.
const MIN_SIMD_LEN: usize = 8;

/// Dispatched inner product; see [`crate::kernels::dot`] for the contract.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if a.len() >= MIN_SIMD_LEN && active() == Isa::Avx2 {
        // SAFETY: `active()` only returns `Avx2` after `is_x86_feature_detected!`
        // confirmed the CPU supports it (or after `override_isa` asserted so).
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Dispatched squared distance; see [`crate::kernels::dist_sq`].
#[inline]
pub(crate) fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if a.len() >= MIN_SIMD_LEN && active() == Isa::Avx2 {
        // SAFETY: as in `dot`.
        return unsafe { avx2::dist_sq(a, b) };
    }
    dist_sq_scalar(a, b)
}

/// Dispatched `a += s·b`; see [`crate::kernels::axpy`].
#[inline]
pub(crate) fn axpy(s: f64, b: &[f64], a: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if a.len() >= MIN_SIMD_LEN && active() == Isa::Avx2 {
        // SAFETY: as in `dot`.
        unsafe { avx2::axpy(s, b, a) };
        return;
    }
    axpy_scalar(s, b, a);
}

/// Dispatched LUT gather-accumulate scan over `u8` codes; see
/// [`crate::kernels::lut_scan_u8`] for the contract.
#[inline]
pub(crate) fn lut_scan_u8(
    codes: &[u8],
    lut: &[f64],
    n: usize,
    m: usize,
    k: usize,
    out: &mut [f64],
) {
    debug_assert!(k >= 1 && codes.len() == m * n && lut.len() == m * k && out.len() >= n);
    #[cfg(target_arch = "x86_64")]
    if n >= MIN_SIMD_LEN && active() == Isa::Avx2 {
        // SAFETY: as in `dot`; slice shapes are checked by the public
        // wrapper, and every table index is clamped to `k - 1` before the
        // gather, so no lane can read outside `lut`.
        return unsafe { avx2::lut_scan_u8(codes, lut, n, m, k, out) };
    }
    lut_scan_u8_scalar(codes, lut, n, m, k, out)
}

/// Dispatched LUT gather-accumulate scan over `u16` codes; see
/// [`crate::kernels::lut_scan_u16`] for the contract.
#[inline]
pub(crate) fn lut_scan_u16(
    codes: &[u16],
    lut: &[f64],
    n: usize,
    m: usize,
    k: usize,
    out: &mut [f64],
) {
    debug_assert!(k >= 1 && codes.len() == m * n && lut.len() == m * k && out.len() >= n);
    #[cfg(target_arch = "x86_64")]
    if n >= MIN_SIMD_LEN && active() == Isa::Avx2 {
        // SAFETY: as in `lut_scan_u8`.
        return unsafe { avx2::lut_scan_u16(codes, lut, n, m, k, out) };
    }
    lut_scan_u16_scalar(codes, lut, n, m, k, out)
}

/// Portable reference LUT scan over `u8` codes: probe `i`'s score is the
/// sum over subspaces `s` of `lut[s·k + codes[s·n + i]]`, accumulated in
/// increasing `s` with a single chain per probe (the AVX2 kernel keeps one
/// probe per lane, so its per-probe rounding sequence is identical).
/// Indices are clamped to `k − 1` — hostile codes degrade scores, never
/// memory safety.
#[inline]
pub(crate) fn lut_scan_u8_scalar(
    codes: &[u8],
    lut: &[f64],
    n: usize,
    m: usize,
    k: usize,
    out: &mut [f64],
) {
    for i in 0..n {
        let mut acc = 0.0;
        for s in 0..m {
            acc += lut[s * k + (codes[s * n + i] as usize).min(k - 1)];
        }
        out[i] = acc;
    }
}

/// Portable reference LUT scan over `u16` codes (same scheme as the `u8`
/// variant).
#[inline]
pub(crate) fn lut_scan_u16_scalar(
    codes: &[u16],
    lut: &[f64],
    n: usize,
    m: usize,
    k: usize,
    out: &mut [f64],
) {
    for i in 0..n {
        let mut acc = 0.0;
        for s in 0..m {
            acc += lut[s * k + (codes[s * n + i] as usize).min(k - 1)];
        }
        out[i] = acc;
    }
}

/// Portable reference inner product (four independent accumulators).
#[inline]
pub(crate) fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..n {
        tail += a[j] * b[j];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Portable reference squared distance (same accumulator scheme as `dot`).
#[inline]
pub(crate) fn dist_sq_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0;
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        tail += d * d;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Portable reference `a += s·b` (elementwise; order-independent).
#[inline]
pub(crate) fn axpy_scalar(s: f64, b: &[f64], a: &mut [f64]) {
    let n = a.len().min(b.len());
    for j in 0..n {
        a[j] += s * b[j];
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m128i, __m256d, _mm256_add_pd, _mm256_i32gather_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm_cvtepu16_epi32,
        _mm_cvtepu8_epi32, _mm_cvtsi32_si128, _mm_cvtsi64_si128, _mm_min_epi32, _mm_set1_epi32,
    };

    /// Reduces the 4-lane accumulator exactly like the scalar kernels:
    /// `(s0 + s1) + (s2 + s3)`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn reduce(acc: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// AVX2 inner product, bit-identical to [`super::dot_scalar`].
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let chunks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let j = i * 4;
            // Unaligned loads: callers pass arbitrary sub-slices. Separate
            // mul + add (no FMA) keeps the per-lane rounding sequence equal
            // to the scalar kernel's.
            let av = _mm256_loadu_pd(a.as_ptr().add(j));
            let bv = _mm256_loadu_pd(b.as_ptr().add(j));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
        }
        let mut tail = 0.0;
        for j in chunks * 4..n {
            tail += a[j] * b[j];
        }
        reduce(acc) + tail
    }

    /// AVX2 squared distance, bit-identical to [`super::dist_sq_scalar`].
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let chunks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let j = i * 4;
            let av = _mm256_loadu_pd(a.as_ptr().add(j));
            let bv = _mm256_loadu_pd(b.as_ptr().add(j));
            let d = _mm256_sub_pd(av, bv);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        let mut tail = 0.0;
        for j in chunks * 4..n {
            let d = a[j] - b[j];
            tail += d * d;
        }
        reduce(acc) + tail
    }

    /// Loads four consecutive `u8` codes as clamped 32-bit gather indices
    /// (one 32-bit load + byte unpack, instead of four scalar loads).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and that `ptr` points at
    /// four readable bytes.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn idx4_u8(ptr: *const u8, clamp: __m128i) -> __m128i {
        let packed = _mm_cvtsi32_si128(ptr.cast::<i32>().read_unaligned());
        _mm_min_epi32(_mm_cvtepu8_epi32(packed), clamp)
    }

    /// Loads four consecutive `u16` codes as clamped 32-bit gather indices.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and that `ptr` points at
    /// four readable `u16`s.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn idx4_u16(ptr: *const u16, clamp: __m128i) -> __m128i {
        let packed = _mm_cvtsi64_si128(ptr.cast::<i64>().read_unaligned());
        _mm_min_epi32(_mm_cvtepu16_epi32(packed), clamp)
    }

    /// AVX2 LUT scan over `u8` codes, bit-identical to
    /// [`super::lut_scan_u8_scalar`]: sixteen probes per iteration, one
    /// probe per lane across four *independent* accumulator vectors, each
    /// lane accumulating `lut[s·k + code]` in increasing subspace order —
    /// the same single-chain rounding sequence per probe as the scalar
    /// kernel (independent chains never mix, so parallelism changes no
    /// value). Four chains in flight hide the multi-cycle gather latency
    /// that a single chain would serialize on. Indices are clamped to
    /// `k − 1` before the gather so the read stays inside `lut` for any
    /// code value.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2, `codes.len() == m·n`,
    /// `lut.len() == m·k`, `out.len() >= n` and `k >= 1`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_scan_u8(
        codes: &[u8],
        lut: &[f64],
        n: usize,
        m: usize,
        k: usize,
        out: &mut [f64],
    ) {
        let clamp = _mm_set1_epi32(k as i32 - 1);
        let mut i = 0;
        while i + 16 <= n {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            for s in 0..m {
                let base = codes.as_ptr().add(s * n + i);
                let table = lut.as_ptr().add(s * k);
                a0 = _mm256_add_pd(a0, _mm256_i32gather_pd::<8>(table, idx4_u8(base, clamp)));
                a1 =
                    _mm256_add_pd(a1, _mm256_i32gather_pd::<8>(table, idx4_u8(base.add(4), clamp)));
                a2 =
                    _mm256_add_pd(a2, _mm256_i32gather_pd::<8>(table, idx4_u8(base.add(8), clamp)));
                a3 = _mm256_add_pd(
                    a3,
                    _mm256_i32gather_pd::<8>(table, idx4_u8(base.add(12), clamp)),
                );
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), a0);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 4), a1);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 8), a2);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 12), a3);
            i += 16;
        }
        while i + 4 <= n {
            let mut acc = _mm256_setzero_pd();
            for s in 0..m {
                let idx = idx4_u8(codes.as_ptr().add(s * n + i), clamp);
                acc = _mm256_add_pd(acc, _mm256_i32gather_pd::<8>(lut.as_ptr().add(s * k), idx));
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), acc);
            i += 4;
        }
        for i in i..n {
            let mut acc = 0.0;
            for s in 0..m {
                acc += lut[s * k + (codes[s * n + i] as usize).min(k - 1)];
            }
            out[i] = acc;
        }
    }

    /// AVX2 LUT scan over `u16` codes, bit-identical to
    /// [`super::lut_scan_u16_scalar`] (same scheme as the `u8` variant:
    /// sixteen probes per iteration over four independent chains).
    ///
    /// # Safety
    /// As in [`lut_scan_u8`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_scan_u16(
        codes: &[u16],
        lut: &[f64],
        n: usize,
        m: usize,
        k: usize,
        out: &mut [f64],
    ) {
        let clamp = _mm_set1_epi32(k as i32 - 1);
        let mut i = 0;
        while i + 16 <= n {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            for s in 0..m {
                let base = codes.as_ptr().add(s * n + i);
                let table = lut.as_ptr().add(s * k);
                a0 = _mm256_add_pd(a0, _mm256_i32gather_pd::<8>(table, idx4_u16(base, clamp)));
                a1 = _mm256_add_pd(
                    a1,
                    _mm256_i32gather_pd::<8>(table, idx4_u16(base.add(4), clamp)),
                );
                a2 = _mm256_add_pd(
                    a2,
                    _mm256_i32gather_pd::<8>(table, idx4_u16(base.add(8), clamp)),
                );
                a3 = _mm256_add_pd(
                    a3,
                    _mm256_i32gather_pd::<8>(table, idx4_u16(base.add(12), clamp)),
                );
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), a0);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 4), a1);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 8), a2);
            _mm256_storeu_pd(out.as_mut_ptr().add(i + 12), a3);
            i += 16;
        }
        while i + 4 <= n {
            let mut acc = _mm256_setzero_pd();
            for s in 0..m {
                let idx = idx4_u16(codes.as_ptr().add(s * n + i), clamp);
                acc = _mm256_add_pd(acc, _mm256_i32gather_pd::<8>(lut.as_ptr().add(s * k), idx));
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), acc);
            i += 4;
        }
        for i in i..n {
            let mut acc = 0.0;
            for s in 0..m {
                acc += lut[s * k + (codes[s * n + i] as usize).min(k - 1)];
            }
            out[i] = acc;
        }
    }

    /// AVX2 `a += s·b`, bit-identical to [`super::axpy_scalar`]
    /// (elementwise, so only the mul/add split matters).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(s: f64, b: &[f64], a: &mut [f64]) {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let sv = _mm256_set1_pd(s);
        for i in 0..chunks {
            let j = i * 4;
            let av = _mm256_loadu_pd(a.as_ptr().add(j));
            let bv = _mm256_loadu_pd(b.as_ptr().add(j));
            let sum = _mm256_add_pd(av, _mm256_mul_pd(sv, bv));
            _mm256_storeu_pd(a.as_mut_ptr().add(j), sum);
        }
        for j in chunks * 4..n {
            a[j] += s * b[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that observe or override the global ISA state
    /// (every kernel result is ISA-independent, but the state itself isn't).
    static ISA_LOCK: Mutex<()> = Mutex::new(());

    fn isa_guard() -> std::sync::MutexGuard<'static, ()> {
        ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deterministic pseudo-random doubles in roughly [-2, 2] with varied
    /// exponents (splitmix64 bits mapped to a dense range).
    fn pseudo(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x as f64 / u64::MAX as f64) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn force_isa_env_var_overrides_detection() {
        let _g = isa_guard();
        // Start from whatever state other tests left behind, and reset to
        // "unknown" so detect() runs again, now under the env var.
        let prev = active();
        std::env::set_var("LEMP_FORCE_ISA", "scalar");
        ACTIVE.store(ISA_UNKNOWN, Ordering::Relaxed);
        assert_eq!(active(), Isa::Scalar, "env override must beat autodetection");
        // Unknown values fall back to autodetection.
        std::env::set_var("LEMP_FORCE_ISA", "quantum");
        ACTIVE.store(ISA_UNKNOWN, Ordering::Relaxed);
        let auto = active();
        assert_eq!(auto == Isa::Avx2, avx2_supported());
        std::env::remove_var("LEMP_FORCE_ISA");
        override_isa(prev);
    }

    #[test]
    fn detection_is_cached_and_stable() {
        let _g = isa_guard();
        let first = active();
        let second = active();
        assert_eq!(first, second);
        if std::env::var("LEMP_FORCE_ISA").as_deref() == Ok("scalar") {
            assert_eq!(first, Isa::Scalar);
        } else if cfg!(target_arch = "x86_64") && avx2_supported() {
            assert_eq!(first, Isa::Avx2);
        } else {
            assert_eq!(first, Isa::Scalar);
        }
    }

    #[test]
    fn override_restores() {
        let _g = isa_guard();
        let prev = override_isa(Isa::Scalar);
        assert_eq!(active(), Isa::Scalar);
        override_isa(prev);
        assert_eq!(active(), prev);
    }

    #[test]
    fn avx2_dot_is_bit_identical_for_every_tail_length() {
        if !avx2_supported() {
            return; // nothing to compare on this machine
        }
        for n in 0..130 {
            let a = pseudo(2 * n as u64 + 1, n);
            let b = pseudo(2 * n as u64 + 2, n);
            let scalar = dot_scalar(&a, &b);
            // SAFETY: guarded by `avx2_supported` above.
            let simd = unsafe { avx2::dot(&a, &b) };
            assert_eq!(scalar.to_bits(), simd.to_bits(), "n={n}: {scalar} vs {simd}");
        }
    }

    #[test]
    fn avx2_dist_sq_is_bit_identical_for_every_tail_length() {
        if !avx2_supported() {
            return;
        }
        for n in 0..130 {
            let a = pseudo(1000 + n as u64, n);
            let b = pseudo(2000 + n as u64, n);
            let scalar = dist_sq_scalar(&a, &b);
            // SAFETY: guarded by `avx2_supported` above.
            let simd = unsafe { avx2::dist_sq(&a, &b) };
            assert_eq!(scalar.to_bits(), simd.to_bits(), "n={n}");
        }
    }

    #[test]
    fn avx2_axpy_is_bit_identical_for_every_tail_length() {
        if !avx2_supported() {
            return;
        }
        for n in 0..130 {
            let b = pseudo(3000 + n as u64, n);
            let mut a_scalar = pseudo(4000 + n as u64, n);
            let mut a_simd = a_scalar.clone();
            axpy_scalar(0.37, &b, &mut a_scalar);
            // SAFETY: guarded by `avx2_supported` above.
            unsafe { avx2::axpy(0.37, &b, &mut a_simd) };
            for j in 0..n {
                assert_eq!(a_scalar[j].to_bits(), a_simd[j].to_bits(), "n={n} j={j}");
            }
        }
    }

    /// Deterministic pseudo-random code indices in `[0, k)`.
    fn pseudo_codes(seed: u64, n: usize, k: usize) -> Vec<u8> {
        pseudo(seed, n).iter().map(|x| (((x + 2.0) / 4.0) * k as f64) as u8 % k as u8).collect()
    }

    #[test]
    fn avx2_lut_scan_u8_is_bit_identical_for_every_tail_length() {
        if !avx2_supported() {
            return;
        }
        let (m, k) = (5, 7);
        let lut = pseudo(99, m * k);
        for n in 0..130 {
            let codes = pseudo_codes(5000 + n as u64, m * n, k);
            let mut want = vec![0.0; n];
            let mut got = vec![0.0; n];
            lut_scan_u8_scalar(&codes, &lut, n, m, k, &mut want);
            // SAFETY: guarded by `avx2_supported` above.
            unsafe { avx2::lut_scan_u8(&codes, &lut, n, m, k, &mut got) };
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn avx2_lut_scan_u16_is_bit_identical_for_every_tail_length() {
        if !avx2_supported() {
            return;
        }
        let (m, k) = (3, 300); // k > 256 exercises the wide-code range
        let lut = pseudo(77, m * k);
        for n in 0..130 {
            let codes: Vec<u16> = pseudo(6000 + n as u64, m * n)
                .iter()
                .map(|x| (((x + 2.0) / 4.0) * k as f64) as u16 % k as u16)
                .collect();
            let mut want = vec![0.0; n];
            let mut got = vec![0.0; n];
            lut_scan_u16_scalar(&codes, &lut, n, m, k, &mut want);
            // SAFETY: guarded by `avx2_supported` above.
            unsafe { avx2::lut_scan_u16(&codes, &lut, n, m, k, &mut got) };
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn lut_scan_clamps_hostile_codes_on_both_paths() {
        let (n, m, k) = (9, 2, 3);
        let codes = vec![255u8; m * n]; // far beyond k − 1
        let lut = pseudo(11, m * k);
        let mut want = vec![0.0; n];
        lut_scan_u8_scalar(&codes, &lut, n, m, k, &mut want);
        let expect = lut[k - 1] + lut[k + k - 1];
        for v in &want {
            assert_eq!(v.to_bits(), expect.to_bits());
        }
        if avx2_supported() {
            let mut got = vec![0.0; n];
            // SAFETY: guarded by `avx2_supported` above.
            unsafe { avx2::lut_scan_u8(&codes, &lut, n, m, k, &mut got) };
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "i={i}");
            }
        }
    }

    #[test]
    fn dispatched_lut_scan_matches_scalar_regardless_of_isa() {
        let _g = isa_guard();
        let (n, m, k) = (53, 4, 9);
        let codes = pseudo_codes(21, m * n, k);
        let lut = pseudo(22, m * k);
        let mut want = vec![0.0; n];
        lut_scan_u8_scalar(&codes, &lut, n, m, k, &mut want);
        for isa in [Isa::Scalar, Isa::Avx2] {
            if isa == Isa::Avx2 && !avx2_supported() {
                continue;
            }
            let prev = override_isa(isa);
            let mut got = vec![0.0; n];
            lut_scan_u8(&codes, &lut, n, m, k, &mut got);
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "{isa:?} i={i}");
            }
            override_isa(prev);
        }
    }

    #[test]
    fn dispatched_kernels_match_scalar_regardless_of_isa() {
        let _g = isa_guard();
        let a = pseudo(7, 53);
        let b = pseudo(8, 53);
        let want_dot = dot_scalar(&a, &b);
        let want_dist = dist_sq_scalar(&a, &b);
        for isa in [Isa::Scalar, Isa::Avx2] {
            if isa == Isa::Avx2 && !avx2_supported() {
                continue;
            }
            let prev = override_isa(isa);
            assert_eq!(dot(&a, &b).to_bits(), want_dot.to_bits(), "{isa:?}");
            assert_eq!(dist_sq(&a, &b).to_bits(), want_dist.to_bits(), "{isa:?}");
            override_isa(prev);
        }
    }

    #[test]
    fn short_vectors_stay_on_the_scalar_path() {
        // Below MIN_SIMD_LEN the dispatcher must not call into AVX2; this
        // is observable only indirectly, so just pin the correctness.
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(dist_sq(&a, &b), 27.0);
    }

    #[test]
    fn special_values_flow_through_identically() {
        if !avx2_supported() {
            return;
        }
        let a = [f64::INFINITY, -0.0, 1e-308, f64::MAX, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.5, 7.0, 1e-10, 2.0, -1.0, 0.0, f64::MIN_POSITIVE, -4.0, 9.0];
        // SAFETY: guarded by `avx2_supported` above.
        let simd = unsafe { avx2::dot(&a, &b) };
        assert_eq!(dot_scalar(&a, &b).to_bits(), simd.to_bits());
    }
}
