//! Dense vector-set linear algebra substrate for the LEMP reproduction.
//!
//! LEMP ([Teflioudi et al., SIGMOD 2015]) operates on *tall-and-skinny* factor
//! matrices: millions of vectors of dimensionality `r` in the tens to
//! hundreds. This crate provides the storage layout and numeric kernels every
//! other crate in the workspace builds on:
//!
//! * [`VectorStore`] — a contiguous, row-major set of `r`-dimensional `f64`
//!   vectors. Rows of a store correspond to *columns* of the paper's factor
//!   matrices `Q`/`P` (the paper stores them transposed for exactly this
//!   reason: sequential vector access).
//! * [`kernels`] — inner products, norms and normalization written so the
//!   compiler can keep them in registers and auto-vectorize (4-way unrolled
//!   independent accumulators, no bounds checks in the hot loop).
//! * [`simd`] — explicit AVX2 versions of the reducing kernels with runtime
//!   dispatch; **bit-identical** to the scalar code (same operation order,
//!   no FMA), so turning SIMD on or off never changes any produced value.
//! * [`TopK`] — a bounded max-`k` selector (min-heap at heart) used by every
//!   Row-Top-k implementation in the workspace.
//! * [`stats`] — scalar summaries (mean, coefficient of variation, quantiles)
//!   used to validate generated datasets against the paper's Table 1.
//!
//! The crate is dependency-free and deliberately small; it is the only place
//! in the workspace allowed to contain "raw loop" numeric code.
//!
//! [Teflioudi et al., SIGMOD 2015]: https://doi.org/10.1145/2723372.2747647

#![warn(missing_docs)]

pub mod error;
pub mod kernels;
pub mod simd;
pub mod stats;
pub mod topk;
pub mod vector_store;

pub use error::LinalgError;
pub use topk::{ScoredItem, TopK};
pub use vector_store::VectorStore;
