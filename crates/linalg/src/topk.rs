//! Bounded top-k selection.
//!
//! Every Row-Top-k implementation in the workspace (Naive, TA, cover trees,
//! LEMP) funnels scored items through this structure. It keeps the `k`
//! largest scores seen so far in a binary min-heap so that the *smallest
//! retained score* — the running threshold `θ′` of Sec. 4.5 — is available in
//! O(1).

/// An item with a score, ordered by score (ties broken by smaller id first
/// when draining, matching the paper's "ties broken arbitrarily" contract
/// deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Item identifier (probe-vector column id).
    pub id: usize,
    /// Score (inner product).
    pub score: f64,
}

/// Keeps the `k` largest-scored items pushed into it.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Min-heap on score: heap[0] is the weakest retained item.
    heap: Vec<ScoredItem>,
}

impl TopK {
    /// A selector retaining the `k` largest items. `k == 0` retains nothing.
    pub fn new(k: usize) -> Self {
        Self { k, heap: Vec::with_capacity(k) }
    }

    /// Capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently retained (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` items are retained; from then on [`TopK::threshold`]
    /// is a meaningful lower bound.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The smallest retained score: the score a new item must *exceed* to
    /// displace one (the running `θ′` of the paper). `-∞` until full, so it
    /// can always be used as a pruning threshold.
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.is_full() && self.k > 0 {
            self.heap[0].score
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Offers an item; keeps it only if it beats the current threshold.
    /// Returns `true` if the item was retained.
    #[inline]
    pub fn push(&mut self, id: usize, score: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(ScoredItem { id, score });
            let mut i = self.heap.len() - 1;
            // sift up (min-heap on score)
            while i > 0 {
                let parent = (i - 1) / 2;
                if self.heap[parent].score <= self.heap[i].score {
                    break;
                }
                self.heap.swap(parent, i);
                i = parent;
            }
            true
        } else if score > self.heap[0].score {
            self.heap[0] = ScoredItem { id, score };
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.heap[l].score < self.heap[smallest].score {
                smallest = l;
            }
            if r < n && self.heap[r].score < self.heap[smallest].score {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// Drains the retained items sorted by descending score (ties by
    /// ascending id). The selector is left empty and reusable.
    pub fn drain_sorted(&mut self) -> Vec<ScoredItem> {
        let mut items = std::mem::take(&mut self.heap);
        items.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).expect("scores are finite").then(a.id.cmp(&b.id))
        });
        items
    }

    /// Clears retained items without changing `k`.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_largest() {
        let mut t = TopK::new(3);
        for (id, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 2.0)] {
            t.push(id, s);
        }
        let out = t.drain_sorted();
        let ids: Vec<usize> = out.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }

    #[test]
    fn threshold_tracks_weakest_retained() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f64::NEG_INFINITY);
        t.push(0, 10.0);
        assert_eq!(t.threshold(), f64::NEG_INFINITY); // not yet full
        t.push(1, 7.0);
        assert_eq!(t.threshold(), 7.0);
        t.push(2, 8.0);
        assert_eq!(t.threshold(), 8.0);
        t.push(3, 1.0); // rejected
        assert_eq!(t.threshold(), 8.0);
    }

    #[test]
    fn push_reports_retention() {
        let mut t = TopK::new(1);
        assert!(t.push(0, 1.0));
        assert!(!t.push(1, 0.5));
        assert!(t.push(2, 2.0));
    }

    #[test]
    fn zero_k_retains_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.push(0, 100.0));
        assert!(t.is_empty());
        assert_eq!(t.threshold(), f64::NEG_INFINITY);
        assert!(t.drain_sorted().is_empty());
    }

    #[test]
    fn ties_are_broken_by_id_when_draining() {
        let mut t = TopK::new(2);
        t.push(7, 1.0);
        t.push(3, 1.0);
        let out = t.drain_sorted();
        assert_eq!(out[0].id, 3);
        assert_eq!(out[1].id, 7);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        // Deterministic xorshift so the test is reproducible without rand.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for k in [1usize, 4, 16, 100] {
            let scores: Vec<f64> = (0..200).map(|_| next()).collect();
            let mut t = TopK::new(k);
            for (id, &s) in scores.iter().enumerate() {
                t.push(id, s);
            }
            let got: Vec<usize> = t.drain_sorted().into_iter().map(|x| x.id).collect();
            let mut expect: Vec<usize> = (0..scores.len()).collect();
            expect.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
            expect.truncate(k);
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn clear_resets_and_is_reusable() {
        let mut t = TopK::new(2);
        t.push(0, 1.0);
        t.push(1, 2.0);
        t.clear();
        assert!(t.is_empty());
        t.push(5, 9.0);
        assert_eq!(t.drain_sorted()[0].id, 5);
    }
}
