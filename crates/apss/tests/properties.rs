//! Property-based tests for the cosine similarity search algorithms.

use lemp_apss::{min_matches_for, BlshIndex, L2apIndex, L2apScratch};
use lemp_linalg::{kernels, VectorStore};
use proptest::prelude::*;

/// Arbitrary *unit* vectors (zero rows are skipped by normalizing a biased
/// vector).
fn unit_store_strategy(
    n: std::ops::Range<usize>,
    dim: usize,
) -> impl Strategy<Value = VectorStore> {
    proptest::collection::vec(proptest::collection::vec(-4.0f64..4.0, dim..=dim), n).prop_map(
        move |mut rows| {
            for row in &mut rows {
                if kernels::norm_sq(row) == 0.0 {
                    row[0] = 1.0;
                }
                kernels::normalize(row);
            }
            VectorStore::from_rows(&rows).expect("finite rows")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// L2AP completeness: at any query threshold at or above the index
    /// threshold, every truly-qualifying vector appears in the candidates.
    #[test]
    fn l2ap_candidates_are_complete(
        store in unit_store_strategy(1..60, 6),
        queries in unit_store_strategy(1..8, 6),
        t in 0.05f64..0.9,
        bump in 0.0f64..0.5,
    ) {
        let idx = L2apIndex::build(&store, t);
        let threshold = (t + bump).min(1.0);
        let mut scratch = L2apScratch::new(store.len());
        let mut cand = Vec::new();
        for q in queries.iter() {
            cand.clear();
            idx.candidates_into(q, threshold, &mut scratch, &mut cand);
            for (i, x) in store.iter().enumerate() {
                if kernels::dot(q, x) >= threshold {
                    prop_assert!(
                        cand.contains(&(i as u32)),
                        "missing qualifying vector {i} at threshold {threshold}"
                    );
                }
            }
        }
    }

    /// L2AP's standalone search returns exactly the brute-force set.
    #[test]
    fn l2ap_search_is_exact(
        store in unit_store_strategy(1..50, 5),
        q in proptest::collection::vec(-4.0f64..4.0, 5..=5),
        t in 0.1f64..0.8,
    ) {
        let mut q = q;
        if kernels::norm_sq(&q) == 0.0 {
            q[0] = 1.0;
        }
        kernels::normalize(&mut q);
        let idx = L2apIndex::build(&store, t);
        let mut scratch = L2apScratch::new(store.len());
        let mut got: Vec<u32> = idx.search(&q, t, &mut scratch).iter().map(|r| r.0).collect();
        got.sort_unstable();
        let mut expect = Vec::new();
        for (i, x) in store.iter().enumerate() {
            if kernels::dot(&q, x) >= t {
                expect.push(i as u32);
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// The BLSH minimum-match count is monotone in the threshold and bounded
    /// by the signature width.
    #[test]
    fn blsh_min_matches_monotone(
        bits in 1usize..64,
        t1 in -1.0f64..1.0,
        bump in 0.0f64..1.0,
        eps in 0.001f64..0.2,
    ) {
        let t2 = (t1 + bump).min(1.0);
        let m1 = min_matches_for(bits, t1, eps);
        let m2 = min_matches_for(bits, t2, eps);
        prop_assert!(m1 <= m2);
        prop_assert!(m2 <= bits as u32);
    }

    /// Signatures are invariant to positive scaling of the input vector
    /// (sign-based hashing sees only the direction).
    #[test]
    fn blsh_signature_scale_invariant(
        store in unit_store_strategy(1..20, 6),
        scale in 0.1f64..10.0,
    ) {
        let idx = BlshIndex::build(&store, 16, 7);
        for v in store.iter() {
            let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
            prop_assert_eq!(idx.query_signature(v), idx.query_signature(&scaled));
        }
    }
}
