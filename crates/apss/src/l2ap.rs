//! L2AP: all-pairs similarity search with prefix L2-norm bounds, adapted to
//! LEMP's query-against-index setting.
//!
//! Reference: D. C. Anastasiu and G. Karypis, "L2AP: Fast cosine similarity
//! search with prefix L-2 norm bounds", ICDE 2014 — \[18\] in the paper.
//!
//! The index is built over unit vectors for a fixed *index threshold* `t`
//! (LEMP uses `t = θ_b(q_max)`, the smallest local threshold any query can
//! pose to the bucket, Sec. 5). Per vector, the longest coordinate prefix
//! whose L2 norm stays below `t` is left **unindexed**: a pair whose common
//! features all fall in that prefix has cosine `< t` by Cauchy–Schwarz, so
//! completeness at thresholds `≥ t` is preserved. Each posting carries the
//! vector's *suffix norm* at its position, enabling the L2 filtering bounds:
//!
//! * **admission** — once the query's remaining suffix norm plus `t` cannot
//!   reach the query threshold, no *new* candidates are admitted;
//! * **during-scan** — a candidate is killed the moment
//!   `A + ‖q_{>f}‖·‖x_{>f}‖ + ‖x_prefix‖ < θ̂`;
//! * **post-scan** — surviving candidates are kept only if
//!   `A + ‖x_prefix‖ ≥ θ̂`.
//!
//! These per-posting checks are exactly the "sophisticated filtering
//! conditions both during and after scanning" the paper credits for L2AP's
//! aggressive pruning — and blames for its cost relative to INCR (Sec. 6.3).

use lemp_linalg::{kernels, VectorStore};

/// One inverted-list posting: vector `lid` has `value` at this coordinate
/// and an L2 norm of `suffix` over this and all later coordinates.
#[derive(Debug, Clone, Copy)]
struct Posting {
    lid: u32,
    value: f64,
    suffix: f64,
}

/// An L2AP index over a set of unit vectors.
#[derive(Debug, Clone)]
pub struct L2apIndex {
    /// The indexed unit vectors (kept for exact verification by callers).
    vectors: VectorStore,
    lists: Vec<Vec<Posting>>,
    /// Per vector: L2 norm of its unindexed prefix (< `t` by construction).
    prefix_norm: Vec<f64>,
    /// Per vector: first indexed coordinate (its prefix is `[0, split)`).
    split: Vec<u32>,
    /// Index threshold: completeness holds for query thresholds ≥ `t`.
    t: f64,
}

/// Reusable per-query scratch: accumulator plus epoch stamps (cleared in
/// O(1) per query, the same trick as the paper's CP array).
#[derive(Debug, Clone)]
pub struct L2apScratch {
    acc: Vec<f64>,
    stamp: Vec<u32>,
    dead: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl L2apScratch {
    /// Scratch sized for an index over `n` vectors.
    pub fn new(n: usize) -> Self {
        Self {
            acc: vec![0.0; n],
            stamp: vec![0; n],
            dead: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Grows the scratch to serve an index over at least `n` vectors.
    pub fn resize(&mut self, n: usize) {
        if n > self.acc.len() {
            self.acc.resize(n, 0.0);
            self.stamp.resize(n, 0);
            self.dead.resize(n, 0);
        }
    }

    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.dead.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }
}

impl L2apIndex {
    /// Builds the index at threshold `t` over `unit_vectors` (each of unit or
    /// zero length; zero vectors are never returned as candidates).
    ///
    /// # Panics
    /// If `t` is not in `(0, 1]` — thresholds outside that range make no
    /// sense for cosine similarity and break the prefix bound.
    pub fn build(unit_vectors: &VectorStore, t: f64) -> Self {
        assert!(t > 0.0 && t <= 1.0, "index threshold must be in (0, 1], got {t}");
        let dim = unit_vectors.dim();
        let mut lists: Vec<Vec<Posting>> = vec![Vec::new(); dim];
        let mut prefix_norm = Vec::with_capacity(unit_vectors.len());
        let mut splits = Vec::with_capacity(unit_vectors.len());
        for (i, x) in unit_vectors.iter().enumerate() {
            // Split: longest prefix with ‖prefix‖ < t stays unindexed.
            let mut prefix_sq = 0.0;
            let mut split = 0;
            for (f, &v) in x.iter().enumerate() {
                let next = prefix_sq + v * v;
                if next.sqrt() < t {
                    prefix_sq = next;
                    split = f + 1;
                } else {
                    break;
                }
            }
            prefix_norm.push(prefix_sq.sqrt());
            splits.push(split as u32);
            // Index the suffix with running suffix norms.
            let mut suffix_sq: f64 = x[split..].iter().map(|v| v * v).sum();
            for (f, &v) in x.iter().enumerate().skip(split) {
                if v != 0.0 {
                    lists[f].push(Posting {
                        lid: i as u32,
                        value: v,
                        suffix: suffix_sq.max(0.0).sqrt(),
                    });
                }
                suffix_sq -= v * v;
            }
        }
        Self { vectors: unit_vectors.clone(), lists, prefix_norm, split: splits, t }
    }

    /// The index threshold `t`.
    pub fn threshold(&self) -> f64 {
        self.t
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` if the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Total number of postings (index size; L2AP's prefix reduction makes
    /// this smaller than `n·r`).
    pub fn postings(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Collects into `out` the local ids of all vectors whose cosine with
    /// the unit query `q` *may* reach `threshold`; exact verification is the
    /// caller's job (LEMP's verification step recomputes the full inner
    /// product anyway, Alg. 1 line 16).
    ///
    /// Completeness requires `threshold ≥ t` (asserted in debug builds).
    pub fn candidates_into(
        &self,
        q: &[f64],
        threshold: f64,
        scratch: &mut L2apScratch,
        out: &mut Vec<u32>,
    ) {
        debug_assert!(threshold >= self.t - 1e-12, "query threshold below index threshold");
        debug_assert_eq!(q.len(), self.lists.len());
        scratch.begin();
        let epoch = scratch.epoch;
        // Query suffix norms: remq[f] = ‖q[f..]‖.
        let dim = q.len();
        let mut remq = vec![0.0; dim + 1];
        for f in (0..dim).rev() {
            remq[f] = (remq[f + 1] * remq[f + 1] + q[f] * q[f]).sqrt();
        }
        for (f, &qf) in q.iter().enumerate() {
            if qf == 0.0 {
                continue;
            }
            let rem_after = remq[f + 1];
            // Admission: a candidate first seen at f has total similarity
            // < t (prefix) + remq[f]·1, so stop admitting when that bound
            // falls below the query threshold.
            let admit = remq[f] + self.t > threshold - 1e-9;
            for post in &self.lists[f] {
                let lid = post.lid as usize;
                if scratch.stamp[lid] != epoch {
                    if !admit {
                        continue;
                    }
                    scratch.stamp[lid] = epoch;
                    scratch.acc[lid] = 0.0;
                    scratch.touched.push(post.lid);
                } else if scratch.dead[lid] == epoch {
                    continue;
                }
                let a = scratch.acc[lid] + qf * post.value;
                scratch.acc[lid] = a;
                // During-scan L2 bound: remaining indexed part plus the
                // unindexed prefix cannot lift the pair to the threshold.
                let suffix_after =
                    (post.suffix * post.suffix - post.value * post.value).max(0.0).sqrt();
                if a + rem_after * suffix_after + self.prefix_norm[lid] < threshold - 1e-9 {
                    scratch.dead[lid] = epoch;
                }
            }
        }
        for &lid in &scratch.touched {
            let l = lid as usize;
            if scratch.dead[l] == epoch {
                continue;
            }
            // Post-scan bound: the unindexed prefix of x can contribute at
            // most ‖x_prefix‖·‖q_prefix‖ (both restricted to [0, split)).
            let s = self.split[l] as usize;
            let q_prefix = (1.0 - remq[s] * remq[s]).max(0.0).sqrt();
            if scratch.acc[l] + self.prefix_norm[l] * q_prefix >= threshold - 1e-9 {
                out.push(lid);
            }
        }
    }

    /// Standalone exact search: ids (and cosines) of all indexed vectors
    /// with `cos(q, x) ≥ threshold`, verified internally.
    pub fn search(&self, q: &[f64], threshold: f64, scratch: &mut L2apScratch) -> Vec<(u32, f64)> {
        let mut cand = Vec::new();
        self.candidates_into(q, threshold, scratch, &mut cand);
        let mut out = Vec::new();
        for lid in cand {
            let cos = kernels::dot(q, self.vectors.vector(lid as usize));
            if cos >= threshold {
                out.push((lid, cos));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    /// Unit-normalized random store.
    fn unit_store(n: usize, dim: usize, seed: u64, sparse: bool) -> VectorStore {
        let cfg = if sparse {
            GeneratorConfig::sparse(n, dim, 0.0, 0.3)
        } else {
            GeneratorConfig::gaussian(n, dim, 0.0)
        };
        let (_, dirs) = cfg.generate(seed).decompose();
        dirs
    }

    fn brute_force(q: &[f64], store: &VectorStore, threshold: f64) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, x) in store.iter().enumerate() {
            if kernels::dot(q, x) >= threshold {
                out.push(i as u32);
            }
        }
        out
    }

    #[test]
    fn candidates_are_complete_at_index_threshold() {
        for (seed, sparse) in [(1, false), (2, true)] {
            let store = unit_store(300, 20, seed, sparse);
            let queries = unit_store(40, 20, seed + 10, sparse);
            let t = 0.5;
            let idx = L2apIndex::build(&store, t);
            let mut scratch = L2apScratch::new(store.len());
            for thr in [0.5, 0.7, 0.9] {
                for q in queries.iter() {
                    let mut cand = Vec::new();
                    idx.candidates_into(q, thr, &mut scratch, &mut cand);
                    let truth = brute_force(q, &store, thr);
                    for id in &truth {
                        assert!(
                            cand.contains(id),
                            "missing true result {id} at thr {thr} (sparse={sparse})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn search_matches_brute_force_exactly() {
        let store = unit_store(250, 16, 5, false);
        let queries = unit_store(30, 16, 6, false);
        let idx = L2apIndex::build(&store, 0.6);
        let mut scratch = L2apScratch::new(store.len());
        for q in queries.iter() {
            let mut got: Vec<u32> = idx.search(q, 0.6, &mut scratch).iter().map(|x| x.0).collect();
            got.sort_unstable();
            let expect = brute_force(q, &store, 0.6);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn pruning_reduces_candidates_vs_full_scan() {
        let store = unit_store(2000, 30, 7, false);
        let q_store = unit_store(20, 30, 8, false);
        let idx = L2apIndex::build(&store, 0.9);
        let mut scratch = L2apScratch::new(store.len());
        let mut total = 0usize;
        for q in q_store.iter() {
            let mut cand = Vec::new();
            idx.candidates_into(q, 0.9, &mut scratch, &mut cand);
            total += cand.len();
        }
        // At a 0.9 cosine threshold on random 30-dim unit vectors nearly
        // nothing qualifies; the L2 filters must discard the bulk of the
        // index (dense gaussian data is the *hardest* case for APSS
        // filtering, so expect reduction, not elimination).
        let full = 20 * store.len();
        assert!(total < full / 3, "candidates not pruned: {total} of {full}");
    }

    #[test]
    fn prefix_reduction_shrinks_index() {
        let store = unit_store(500, 25, 9, false);
        let full: usize = store.len() * store.dim();
        let idx = L2apIndex::build(&store, 0.9);
        assert!(idx.postings() < full, "postings {} vs dense {full}", idx.postings());
        // Lower threshold → less prefix skipped → more postings.
        let idx_low = L2apIndex::build(&store, 0.2);
        assert!(idx_low.postings() >= idx.postings());
    }

    #[test]
    fn build_rejects_invalid_threshold() {
        let store = unit_store(4, 4, 11, false);
        assert!(std::panic::catch_unwind(|| L2apIndex::build(&store, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| L2apIndex::build(&store, 1.5)).is_err());
    }

    #[test]
    fn empty_index_yields_no_candidates() {
        let store = VectorStore::empty(8).unwrap();
        let idx = L2apIndex::build(&store, 0.5);
        assert!(idx.is_empty());
        let mut scratch = L2apScratch::new(0);
        let q = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut cand = Vec::new();
        idx.candidates_into(&q, 0.5, &mut scratch, &mut cand);
        assert!(cand.is_empty());
    }

    #[test]
    fn identical_vector_is_always_found() {
        let store = unit_store(100, 12, 13, false);
        let idx = L2apIndex::build(&store, 0.95);
        let mut scratch = L2apScratch::new(store.len());
        for i in (0..store.len()).step_by(7) {
            let q = store.vector(i).to_vec();
            let res = idx.search(&q, 0.95, &mut scratch);
            assert!(res.iter().any(|&(id, cos)| id as usize == i && cos > 0.9999));
        }
    }

    #[test]
    fn scratch_epochs_do_not_leak_between_queries() {
        let store = unit_store(50, 10, 15, false);
        let idx = L2apIndex::build(&store, 0.5);
        let mut scratch = L2apScratch::new(store.len());
        let q1 = store.vector(0).to_vec();
        let q2 = store.vector(1).to_vec();
        let r1a = idx.search(&q1, 0.5, &mut scratch);
        let _ = idx.search(&q2, 0.5, &mut scratch);
        let r1b = idx.search(&q1, 0.5, &mut scratch);
        assert_eq!(r1a.len(), r1b.len());
    }
}
