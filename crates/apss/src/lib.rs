//! Cosine similarity search algorithms used as LEMP bucket methods.
//!
//! LEMP reduces large-entry retrieval to a set of small cosine similarity
//! search problems (one per probe bucket). Besides the paper's own COORD and
//! INCR algorithms (which live in `lemp-core`), Sec. 5 adapts two existing
//! families as bucket methods, both implemented here from their publications:
//!
//! * [`l2ap`] — **L2AP** (Anastasiu & Karypis, ICDE 2014 \[18\]): an all-pairs
//!   similarity search index with prefix-L2-norm index reduction and L2-based
//!   candidate filtering during and after inverted-list scanning. "The
//!   state-of-the-art APSS algorithm for cosine similarity search."
//! * [`blsh`] — **BayesLSH-Lite** (Satuluri & Parthasarathy, VLDB 2012 \[19\]):
//!   random-hyperplane signatures and a Bayesian minimum-match threshold; the
//!   single *approximate* method in the evaluation (false-negative rate ε).
//!
//! Both operate on **unit vectors**: within a LEMP bucket the probe vectors
//! are normalized, and the cosine threshold is the query's local threshold
//! `θ_b(q)` (Eq. 3 of the paper).

#![warn(missing_docs)]

pub mod blsh;
pub mod l2ap;
pub mod self_join;

pub use blsh::{min_matches_for, BlshIndex};
pub use l2ap::{L2apIndex, L2apScratch};
pub use self_join::{cosine_self_join, naive_self_join, SelfJoinOutput};
