//! BayesLSH-Lite: Bayesian pruning over random-hyperplane LSH signatures.
//!
//! Reference: V. Satuluri and S. Parthasarathy, "Bayesian locality sensitive
//! hashing for fast similarity search", PVLDB 5(5), 2012 — \[19\] in the paper.
//!
//! Each vector gets a `k`-bit signature: bit `i` is the sign of its inner
//! product with random gaussian hyperplane `hᵢ` (Goemans–Williamson rounding:
//! two unit vectors with cosine `s` agree on a bit with probability
//! `p(s) = 1 − arccos(s)/π`). Given a candidate that matches the query on
//! `m` of `k` bits, BayesLSH-Lite computes the posterior probability (under a
//! uniform prior on `s`) that its similarity reaches the threshold `t`; if
//! that probability is below ε the candidate is pruned, otherwise its exact
//! similarity is computed ("Lite" = exact verification instead of similarity
//! estimation). Since the posterior is monotone in `m`, the decision reduces
//! to a **minimum match count** `m*(t, ε)`, which LEMP precomputes per bucket
//! from the largest local threshold (Sec. 6.1: one signature of 32 bits,
//! ε = 0.03).
//!
//! This is the evaluation's only *approximate* method: true results are
//! missed with probability controlled by ε.

use lemp_linalg::{kernels, VectorStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default signature width (bits), as in the paper's experiments.
pub const DEFAULT_BITS: usize = 32;
/// Default false-negative budget, as in the paper's experiments.
pub const DEFAULT_EPS: f64 = 0.03;

/// Random-hyperplane signatures over a set of unit vectors.
#[derive(Debug, Clone)]
pub struct BlshIndex {
    /// One `k ≤ 64`-bit signature per indexed vector.
    signatures: Vec<u64>,
    /// The `k` random hyperplanes (row-major, one per bit).
    hyperplanes: VectorStore,
    bits: usize,
}

impl BlshIndex {
    /// Builds signatures with `bits ≤ 64` random hyperplanes drawn from
    /// `seed`.
    ///
    /// # Panics
    /// If `bits` is 0 or exceeds 64.
    pub fn build(unit_vectors: &VectorStore, bits: usize, seed: u64) -> Self {
        assert!(bits > 0 && bits <= 64, "signature width must be in 1..=64, got {bits}");
        let dim = unit_vectors.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut planes = Vec::with_capacity(bits * dim);
        for _ in 0..bits * dim {
            planes.push(lemp_data::rng::standard_normal(&mut rng));
        }
        let hyperplanes = VectorStore::from_flat(planes, dim).expect("finite hyperplanes");
        let signatures =
            unit_vectors.iter().map(|x| Self::sign_bits(&hyperplanes, x, bits)).collect();
        Self { signatures, hyperplanes, bits }
    }

    fn sign_bits(hyperplanes: &VectorStore, x: &[f64], bits: usize) -> u64 {
        let mut sig = 0u64;
        for b in 0..bits {
            if kernels::dot(hyperplanes.vector(b), x) >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Signature width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// `true` if no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Signature of an arbitrary (unit) query vector.
    pub fn query_signature(&self, q: &[f64]) -> u64 {
        Self::sign_bits(&self.hyperplanes, q, self.bits)
    }

    /// Number of matching signature bits between a query signature and
    /// indexed vector `lid`.
    #[inline]
    pub fn matches(&self, query_sig: u64, lid: usize) -> u32 {
        self.bits as u32 - (query_sig ^ self.signatures[lid]).count_ones()
    }

    /// Minimum number of matching bits a candidate must reach so that the
    /// posterior probability of `sim ≥ threshold` is at least `eps`
    /// (candidates below it are pruned; the resulting false-negative rate is
    /// bounded by ε as in BayesLSH-Lite).
    ///
    /// Monotone in `threshold`; computed by numerical integration of the
    /// binomial likelihood under a uniform prior on the cosine.
    pub fn min_matches(&self, threshold: f64, eps: f64) -> u32 {
        min_matches_for(self.bits, threshold, eps)
    }
}

/// [`BlshIndex::min_matches`] without an index instance: the minimum match
/// count depends only on the signature width, the threshold and ε, so LEMP
/// precomputes a table of these once per run (Sec. 6.1: "the minimum number
/// of hash matches required for a bucket are precomputed").
pub fn min_matches_for(bits: usize, threshold: f64, eps: f64) -> u32 {
    let threshold = threshold.clamp(-1.0, 1.0);
    for m in 0..=bits as u32 {
        if posterior_tail(bits as u32, m, threshold) >= eps {
            return m;
        }
    }
    // Even a full match is not convincing (tiny ε or thr ≈ 1): require all
    // bits.
    bits as u32
}

/// `P(sim ≥ t | m of k bits match)` under a uniform prior on `sim ∈ [−1, 1]`.
///
/// Uses the collision probability `p(s) = 1 − arccos(s)/π` and a fixed
/// 512-point midpoint rule; likelihoods are evaluated in log-space to avoid
/// underflow at large `k`.
fn posterior_tail(k: u32, m: u32, t: f64) -> f64 {
    const STEPS: usize = 512;
    let mut num = 0.0;
    let mut den = 0.0;
    // Normalize by the max log-likelihood for numerical stability.
    let mut max_ll = f64::NEG_INFINITY;
    let mut lls = [0.0f64; STEPS];
    let mut ss = [0.0f64; STEPS];
    for (i, (ll_slot, s_slot)) in lls.iter_mut().zip(ss.iter_mut()).enumerate() {
        let s = -1.0 + 2.0 * (i as f64 + 0.5) / STEPS as f64;
        let p = (1.0 - s.acos() / std::f64::consts::PI).clamp(1e-12, 1.0 - 1e-12);
        let ll = m as f64 * p.ln() + (k - m) as f64 * (1.0 - p).ln();
        *ll_slot = ll;
        *s_slot = s;
        if ll > max_ll {
            max_ll = ll;
        }
    }
    for i in 0..STEPS {
        let w = (lls[i] - max_ll).exp();
        den += w;
        if ss[i] >= t {
            num += w;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn unit_store(n: usize, dim: usize, seed: u64) -> VectorStore {
        let (_, dirs) = GeneratorConfig::gaussian(n, dim, 0.0).generate(seed).decompose();
        dirs
    }

    #[test]
    fn collision_probability_tracks_angle() {
        // For pairs with known cosine, the fraction of matching bits over
        // many hyperplanes should approximate 1 − arccos(s)/π.
        let dim = 16;
        let bits = 64;
        for target_cos in [0.0f64, 0.5, 0.9] {
            // Build a pair with the exact cosine in a 2-plane.
            let mut a = vec![0.0; dim];
            let mut b = vec![0.0; dim];
            a[0] = 1.0;
            b[0] = target_cos;
            b[1] = (1.0 - target_cos * target_cos).sqrt();
            let store = VectorStore::from_rows(&[a.clone(), b]).unwrap();
            let mut agree = 0u32;
            let trials = 40;
            for seed in 0..trials {
                let idx = BlshIndex::build(&store, bits, seed);
                let qs = idx.query_signature(&a);
                agree += idx.matches(qs, 1);
            }
            let frac = agree as f64 / (trials as f64 * bits as f64);
            let expect = 1.0 - target_cos.acos() / std::f64::consts::PI;
            assert!(
                (frac - expect).abs() < 0.05,
                "cos {target_cos}: got {frac}, expected {expect}"
            );
        }
    }

    #[test]
    fn self_signature_matches_fully() {
        let store = unit_store(20, 12, 1);
        let idx = BlshIndex::build(&store, 32, 2);
        for i in 0..store.len() {
            let qs = idx.query_signature(store.vector(i));
            assert_eq!(idx.matches(qs, i), 32);
        }
    }

    #[test]
    fn min_matches_is_monotone_in_threshold() {
        let store = unit_store(4, 8, 3);
        let idx = BlshIndex::build(&store, 32, 4);
        let mut last = 0;
        for thr in [0.0, 0.3, 0.6, 0.8, 0.95] {
            let m = idx.min_matches(thr, DEFAULT_EPS);
            assert!(m >= last, "m*({thr}) = {m} < previous {last}");
            last = m;
        }
        assert!(last <= 32);
    }

    #[test]
    fn posterior_tail_sanity() {
        // All bits matching at a moderate threshold: near-certain positive.
        assert!(posterior_tail(32, 32, 0.5) > 0.9);
        // No bits matching at a high threshold: near-certain negative.
        assert!(posterior_tail(32, 0, 0.8) < 1e-6);
        // Tail at t = −1 is the whole posterior.
        assert!((posterior_tail(16, 7, -1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_respects_epsilon_budget() {
        // Prune with m*(t, ε) and measure recall of true ≥ t pairs.
        let store = unit_store(1500, 24, 5);
        let queries = unit_store(60, 24, 6);
        let t = 0.7;
        let idx = BlshIndex::build(&store, 32, 7);
        let m_star = idx.min_matches(t, DEFAULT_EPS);
        let mut truths = 0usize;
        let mut kept = 0usize;
        for q in queries.iter() {
            let qs = idx.query_signature(q);
            for (i, x) in store.iter().enumerate() {
                if kernels::dot(q, x) >= t {
                    truths += 1;
                    if idx.matches(qs, i) >= m_star {
                        kept += 1;
                    }
                }
            }
        }
        // Few qualifying pairs exist on random data; synthesize extras by
        // querying with the store's own vectors.
        for i in (0..store.len()).step_by(50) {
            let q = store.vector(i);
            let qs = idx.query_signature(q);
            for (j, x) in store.iter().enumerate() {
                if kernels::dot(q, x) >= t {
                    truths += 1;
                    if idx.matches(qs, j) >= m_star {
                        kept += 1;
                    }
                }
            }
        }
        assert!(truths > 0, "test needs qualifying pairs");
        let recall = kept as f64 / truths as f64;
        assert!(
            recall >= 1.0 - DEFAULT_EPS - 0.05,
            "recall {recall} below 1 − ε − slack (truths {truths})"
        );
    }

    #[test]
    fn pruning_discards_dissimilar_vectors() {
        let store = unit_store(800, 24, 8);
        let q = unit_store(1, 24, 9);
        let idx = BlshIndex::build(&store, 32, 10);
        let m_star = idx.min_matches(0.9, DEFAULT_EPS);
        let qs = idx.query_signature(q.vector(0));
        let survivors = (0..store.len()).filter(|&i| idx.matches(qs, i) >= m_star).count();
        // Random 24-dim vectors almost never reach cosine 0.9.
        assert!(
            survivors < store.len() / 4,
            "expected pruning at high threshold, {survivors} survived"
        );
    }

    #[test]
    fn build_rejects_bad_bit_widths() {
        let store = unit_store(2, 4, 11);
        assert!(std::panic::catch_unwind(|| BlshIndex::build(&store, 0, 1)).is_err());
        assert!(std::panic::catch_unwind(|| BlshIndex::build(&store, 65, 1)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let store = unit_store(30, 10, 12);
        let a = BlshIndex::build(&store, 32, 42);
        let b = BlshIndex::build(&store, 32, 42);
        assert_eq!(a.signatures, b.signatures);
        let c = BlshIndex::build(&store, 32, 43);
        assert_ne!(a.signatures, c.signatures);
    }
}
