//! All-pairs similarity search (APSS) self-join.
//!
//! The original problem the paper's cosine-search substrate comes from
//! (references \[5–8\]: Bayardo et al.'s AllPairs and successors): given
//! *one* set of vectors, find every pair whose cosine similarity reaches a
//! threshold `t`. LEMP borrows these algorithms for its buckets; this
//! module completes the substrate by offering the self-join itself, built
//! on the same [`L2apIndex`]:
//!
//! 1. normalize the inputs (zero vectors can never match);
//! 2. build one L2AP index over the unit vectors at threshold `t`;
//! 3. probe the index with every vector and keep matches with a larger id
//!    (each unordered pair is found once, from its smaller-id side).
//!
//! The result is exact: L2AP's prefix bounds only prune candidates that
//! provably cannot reach `t`, and every survivor is verified with a real
//! dot product (see `l2ap.rs`).

use lemp_linalg::{kernels, VectorStore};

use crate::l2ap::{L2apIndex, L2apScratch};

/// Output of [`cosine_self_join`].
#[derive(Debug, Clone)]
pub struct SelfJoinOutput {
    /// Matching pairs `(i, j, cos)` with `i < j` and `cos ≥ t`, sorted by
    /// `(i, j)`.
    pub pairs: Vec<(u32, u32, f64)>,
    /// Candidate pairs that reached verification (the APSS literature's
    /// headline cost metric).
    pub candidates: u64,
}

/// Exact cosine self-join: all unordered pairs with similarity ≥ `t`.
///
/// `t` must lie in `(0, 1]` — APSS indexes fundamentally rely on a
/// positive threshold for their prefix bounds (the same restriction the
/// original algorithms have).
///
/// # Panics
/// If `t` is outside `(0, 1]`.
pub fn cosine_self_join(vectors: &VectorStore, t: f64) -> SelfJoinOutput {
    assert!(0.0 < t && t <= 1.0, "self-join threshold must lie in (0, 1], got {t}");
    let (lengths, units) = vectors.decompose();
    let index = L2apIndex::build(&units, t);
    let mut scratch = L2apScratch::new(units.len());
    let mut pairs = Vec::new();
    let mut candidates = 0u64;
    for (i, &len) in lengths.iter().enumerate() {
        if len == 0.0 {
            continue; // zero vectors have no direction
        }
        let q = units.vector(i);
        let matches = index.search(q, t, &mut scratch);
        candidates += matches.len() as u64;
        for (j, sim) in matches {
            if (j as usize) > i {
                pairs.push((i as u32, j, sim));
            }
        }
    }
    pairs.sort_unstable_by_key(|&(i, j, _)| (i, j));
    SelfJoinOutput { pairs, candidates }
}

/// Reference self-join by exhaustive pairwise comparison (`O(n²·r)`), for
/// tests and benchmark baselines.
pub fn naive_self_join(vectors: &VectorStore, t: f64) -> Vec<(u32, u32, f64)> {
    assert!(0.0 < t && t <= 1.0, "self-join threshold must lie in (0, 1], got {t}");
    let (lengths, units) = vectors.decompose();
    let mut pairs = Vec::new();
    for (i, &len_i) in lengths.iter().enumerate() {
        if len_i == 0.0 {
            continue;
        }
        for (j, &len_j) in lengths.iter().enumerate().skip(i + 1) {
            if len_j == 0.0 {
                continue;
            }
            let sim = kernels::dot(units.vector(i), units.vector(j));
            if sim >= t {
                pairs.push((i as u32, j as u32, sim));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn agree(vectors: &VectorStore, t: f64) {
        let fast = cosine_self_join(vectors, t);
        let slow = naive_self_join(vectors, t);
        let fast_ids: Vec<(u32, u32)> = fast.pairs.iter().map(|&(i, j, _)| (i, j)).collect();
        let slow_ids: Vec<(u32, u32)> = slow.iter().map(|&(i, j, _)| (i, j)).collect();
        assert_eq!(fast_ids, slow_ids, "pair sets differ at t={t}");
        for (a, b) in fast.pairs.iter().zip(&slow) {
            assert!((a.2 - b.2).abs() < 1e-12, "similarity mismatch at {:?}", (a.0, a.1));
        }
    }

    #[test]
    fn matches_naive_across_regimes() {
        for (cov, seed) in [(0.2, 1u64), (1.0, 2), (3.0, 3)] {
            let v = GeneratorConfig::gaussian(120, 8, cov).generate(seed);
            for t in [0.3, 0.7, 0.95] {
                agree(&v, t);
            }
        }
    }

    #[test]
    fn sparse_vectors_work() {
        let v = GeneratorConfig::sparse(150, 10, 1.0, 0.4).generate(4);
        for t in [0.5, 0.9] {
            agree(&v, t);
        }
    }

    #[test]
    fn duplicates_match_at_threshold_one() {
        let mut rows = vec![vec![1.0, 2.0, 2.0]; 3];
        rows.push(vec![-1.0, 0.0, 0.5]);
        let v = VectorStore::from_rows(&rows).unwrap();
        let out = cosine_self_join(&v, 1.0);
        // the three duplicates form all three pairs; rounding may place the
        // cosine a hair below 1.0, so compare against naive instead of 3
        assert_eq!(out.pairs.len(), naive_self_join(&v, 1.0).len(), "duplicate pairs lost");
        for &(_, _, sim) in &out.pairs {
            assert!(sim >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn zero_vectors_never_match() {
        let v = VectorStore::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 0.0],
        ])
        .unwrap();
        let out = cosine_self_join(&v, 0.5);
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].0, out.pairs[0].1), (1, 2));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let v = VectorStore::empty(4).unwrap();
        assert!(cosine_self_join(&v, 0.5).pairs.is_empty());
        let v = VectorStore::from_rows(&[vec![1.0, 1.0]]).unwrap();
        assert!(cosine_self_join(&v, 0.5).pairs.is_empty());
    }

    #[test]
    fn candidates_do_not_explode_at_high_threshold() {
        let v = GeneratorConfig::gaussian(300, 8, 0.5).generate(9);
        let strict = cosine_self_join(&v, 0.95);
        let loose = cosine_self_join(&v, 0.3);
        assert!(
            strict.candidates < loose.candidates,
            "higher threshold must prune more: {} vs {}",
            strict.candidates,
            loose.candidates
        );
        // pruning actually happened relative to the full n²/2 comparisons
        let all_pairs = (v.len() * (v.len() - 1) / 2) as u64;
        assert!(strict.candidates < all_pairs / 2, "L2AP barely pruned: {}", strict.candidates);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn rejects_non_positive_threshold() {
        let v = GeneratorConfig::gaussian(5, 4, 0.5).generate(10);
        let _ = cosine_self_join(&v, 0.0);
    }
}
