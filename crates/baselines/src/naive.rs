//! The Naive baseline: compute the full product matrix and select.
//!
//! Sec. 2 of the paper: "A simple solution … is to first compute the full
//! product matrix `QᵀP`, and then select from this product all entries above
//! the threshold (for Above-θ) or the k largest entries in each row (for
//! Row-Top-k) … it has time complexity O(mnr) and is infeasible for large
//! problem instances." It is the reference both for correctness (all exact
//! methods must reproduce its output) and for speedups (paper reports up to
//! 14 572× over it).

use std::time::Instant;

use lemp_linalg::{TopK, VectorStore};

use crate::types::{Entry, RetrievalCounters, TopKLists};

/// The naive full-product retriever.
///
/// Stateless; the struct exists so all algorithms share the
/// `above_theta`/`row_top_k` call shape and counter reporting.
#[derive(Debug, Default, Clone, Copy)]
pub struct Naive;

impl Naive {
    /// Solves Above-θ by scanning the full product row by row.
    pub fn above_theta(
        &self,
        queries: &VectorStore,
        probes: &VectorStore,
        theta: f64,
    ) -> (Vec<Entry>, RetrievalCounters) {
        let start = Instant::now();
        let mut out = Vec::new();
        let mut row = Vec::with_capacity(probes.len());
        for (i, q) in queries.iter().enumerate() {
            probes.dots_with(q, &mut row);
            for (j, &v) in row.iter().enumerate() {
                if v >= theta {
                    out.push(Entry { query: i as u32, probe: j as u32, value: v });
                }
            }
        }
        let counters = RetrievalCounters {
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: (queries.len() * probes.len()) as u64,
            queries: queries.len() as u64,
            results: out.len() as u64,
            ..Default::default()
        };
        (out, counters)
    }

    /// Solves Row-Top-k by scanning the full product row by row.
    pub fn row_top_k(
        &self,
        queries: &VectorStore,
        probes: &VectorStore,
        k: usize,
    ) -> (TopKLists, RetrievalCounters) {
        let start = Instant::now();
        let mut lists = Vec::with_capacity(queries.len());
        let mut top = TopK::new(k);
        let mut row = Vec::with_capacity(probes.len());
        for q in queries.iter() {
            probes.dots_with(q, &mut row);
            for (j, &v) in row.iter().enumerate() {
                top.push(j, v);
            }
            lists.push(top.drain_sorted());
        }
        let results: usize = lists.iter().map(Vec::len).sum();
        let counters = RetrievalCounters {
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: (queries.len() * probes.len()) as u64,
            queries: queries.len() as u64,
            results: results as u64,
            ..Default::default()
        };
        (lists, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (VectorStore, VectorStore) {
        // The running example of Fig. 1b: 2 latent factors, 4 users (rows of
        // QT) and 5 movies (columns of P).
        let q = VectorStore::from_rows(&[
            vec![3.2, -0.4],
            vec![3.1, -0.2],
            vec![0.0, 1.8],
            vec![-0.4, 1.9],
        ])
        .unwrap();
        let p = VectorStore::from_rows(&[
            vec![1.6, 0.6],
            vec![1.3, 0.8],
            vec![0.7, 2.7],
            vec![1.0, 2.8],
            vec![0.4, 2.2],
        ])
        .unwrap();
        (q, p)
    }

    #[test]
    fn above_theta_matches_figure_1b() {
        // Fig. 1b shows QTP row 0 as (4.9, 3.8, 1.2, 2.1, 0.4) etc.; with
        // θ = 3.8 exactly the ten bold-ish large entries qualify.
        let (q, p) = fixture();
        let (entries, c) = Naive.above_theta(&q, &p, 3.8);
        let pairs = crate::types::canonical_pairs(&entries);
        assert_eq!(
            pairs,
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (3, 4)]
        );
        assert_eq!(c.candidates, 20);
        assert_eq!(c.queries, 4);
        assert_eq!(c.results, 10);
        for e in &entries {
            assert!(e.value >= 3.8);
        }
        // spot-check a value from the figure
        let e00 = entries.iter().find(|e| e.query == 0 && e.probe == 0).unwrap();
        assert!((e00.value - 4.88).abs() < 1e-9); // 3.2*1.6 − 0.4*0.6
    }

    #[test]
    fn above_theta_empty_result_for_huge_theta() {
        let (q, p) = fixture();
        let (entries, _) = Naive.above_theta(&q, &p, 1e9);
        assert!(entries.is_empty());
    }

    #[test]
    fn row_top_k_ranks_each_row() {
        let (q, p) = fixture();
        let (lists, c) = Naive.row_top_k(&q, &p, 2);
        assert_eq!(lists.len(), 4);
        for l in &lists {
            assert_eq!(l.len(), 2);
            assert!(l[0].score >= l[1].score);
        }
        // user 0 (action fan): top movies are the action ones (ids 0, 1)
        let ids: Vec<usize> = lists[0].iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(c.results, 8);
    }

    #[test]
    fn row_top_k_with_k_larger_than_n_returns_all() {
        let (q, p) = fixture();
        let (lists, _) = Naive.row_top_k(&q, &p, 100);
        for l in &lists {
            assert_eq!(l.len(), p.len());
        }
    }

    #[test]
    fn row_top_k_zero_k_is_empty() {
        let (q, p) = fixture();
        let (lists, c) = Naive.row_top_k(&q, &p, 0);
        assert!(lists.iter().all(Vec::is_empty));
        assert_eq!(c.results, 0);
    }
}
