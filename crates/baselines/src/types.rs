//! Problem-level result types and instrumentation counters shared by every
//! retrieval algorithm in the workspace.

use lemp_linalg::ScoredItem;

/// One large entry of the product matrix: `[QᵀP]_{query,probe} = value ≥ θ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Row index (query-vector id `i`).
    pub query: u32,
    /// Column index (probe-vector id `j`).
    pub probe: u32,
    /// The inner product `qᵢᵀpⱼ`.
    pub value: f64,
}

/// Row-Top-k output: for every query (outer index) the retained probes
/// sorted by descending inner product, ties by ascending probe id.
pub type TopKLists = Vec<Vec<ScoredItem>>;

/// Work counters every algorithm reports, mirroring the measurements in the
/// paper's tables: wall-clock phases and the number of *candidates* — probe
/// vectors whose full inner product with a query was computed ("|C|/q" in
/// Tables 3–6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetrievalCounters {
    /// Index-construction time (sorted lists, trees, buckets) in ns.
    pub preprocess_ns: u64,
    /// Parameter-tuning time (LEMP only) in ns.
    pub tune_ns: u64,
    /// Retrieval time in ns.
    pub retrieval_ns: u64,
    /// Full inner products computed during retrieval.
    pub candidates: u64,
    /// Number of queries processed.
    pub queries: u64,
    /// Number of result entries produced.
    pub results: u64,
}

impl RetrievalCounters {
    /// Average candidate-set size per query (`|C|/q` of the paper's tables);
    /// 0 when no query ran.
    pub fn candidates_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.candidates as f64 / self.queries as f64
        }
    }

    /// Total wall-clock (preprocessing + tuning + retrieval) in seconds, the
    /// quantity the paper's figures plot.
    pub fn total_seconds(&self) -> f64 {
        (self.preprocess_ns + self.tune_ns + self.retrieval_ns) as f64 / 1e9
    }

    /// Merges another counter set into this one (used when a run is split
    /// across phases or threads).
    pub fn merge(&mut self, other: &RetrievalCounters) {
        self.preprocess_ns += other.preprocess_ns;
        self.tune_ns += other.tune_ns;
        self.retrieval_ns += other.retrieval_ns;
        self.candidates += other.candidates;
        self.queries += other.queries;
        self.results += other.results;
    }
}

/// Canonical form of an Above-θ result for comparisons: `(query, probe)`
/// pairs sorted lexicographically.
pub fn canonical_pairs(entries: &[Entry]) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = entries.iter().map(|e| (e.query, e.probe)).collect();
    pairs.sort_unstable();
    pairs
}

/// Canonical form of a Row-Top-k result: per query the sorted probe ids
/// *without* scores. Two correct algorithms may legitimately differ on probes
/// tied at the k-th score; [`topk_equivalent`] handles that case.
pub fn canonical_topk(lists: &TopKLists) -> Vec<Vec<u32>> {
    lists
        .iter()
        .map(|l| {
            let mut ids: Vec<u32> = l.iter().map(|s| s.id as u32).collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// Whether two Row-Top-k results are equivalent up to ties: per query the
/// multisets of retained *scores* must match to `tol` (the ids may differ
/// only where scores tie, which this check permits).
pub fn topk_equivalent(a: &TopKLists, b: &TopKLists, tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (la, lb) in a.iter().zip(b) {
        if la.len() != lb.len() {
            return false;
        }
        let mut sa: Vec<f64> = la.iter().map(|s| s.score).collect();
        let mut sb: Vec<f64> = lb.iter().map(|s| s.score).collect();
        sa.sort_by(|x, y| x.partial_cmp(y).expect("finite scores"));
        sb.sort_by(|x, y| x.partial_cmp(y).expect("finite scores"));
        if sa.iter().zip(&sb).any(|(x, y)| (x - y).abs() > tol) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_average_and_total() {
        let c = RetrievalCounters {
            preprocess_ns: 1_000_000_000,
            tune_ns: 500_000_000,
            retrieval_ns: 1_500_000_000,
            candidates: 100,
            queries: 4,
            results: 7,
        };
        assert!((c.candidates_per_query() - 25.0).abs() < 1e-12);
        assert!((c.total_seconds() - 3.0).abs() < 1e-12);
        assert_eq!(RetrievalCounters::default().candidates_per_query(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RetrievalCounters { queries: 1, candidates: 2, ..Default::default() };
        let b = RetrievalCounters { queries: 3, candidates: 5, results: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.queries, 4);
        assert_eq!(a.candidates, 7);
        assert_eq!(a.results, 1);
    }

    #[test]
    fn canonical_pairs_sorts() {
        let entries = vec![
            Entry { query: 1, probe: 2, value: 0.5 },
            Entry { query: 0, probe: 9, value: 1.5 },
            Entry { query: 1, probe: 0, value: 0.7 },
        ];
        assert_eq!(canonical_pairs(&entries), vec![(0, 9), (1, 0), (1, 2)]);
    }

    #[test]
    fn topk_equivalence_tolerates_tied_id_swaps() {
        use lemp_linalg::ScoredItem;
        let a = vec![vec![ScoredItem { id: 0, score: 1.0 }, ScoredItem { id: 1, score: 0.5 }]];
        let b = vec![vec![
            ScoredItem { id: 2, score: 1.0 }, // different id, same score: a tie swap
            ScoredItem { id: 1, score: 0.5 },
        ]];
        assert!(topk_equivalent(&a, &b, 1e-9));
        let c = vec![vec![ScoredItem { id: 0, score: 1.0 }, ScoredItem { id: 1, score: 0.4 }]];
        assert!(!topk_equivalent(&a, &c, 1e-9));
        assert!(!topk_equivalent(&a, &vec![], 1e-9));
        assert!(!topk_equivalent(&a, &vec![vec![]], 1e-9));
    }
}
