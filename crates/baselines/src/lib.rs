//! Baseline algorithms for the large-entry retrieval problem.
//!
//! The paper (Sec. 5–6) compares LEMP against four prior approaches, all of
//! which are implemented here from scratch:
//!
//! * [`naive`] — compute the full product `QᵀP` and select (the `Naive`
//!   baseline; O(mnr), the yardstick every speedup in the paper is measured
//!   against).
//! * [`ta`] — Fagin's threshold algorithm adapted to inner products
//!   (per-coordinate sorted lists; the "most promising list" max-heap
//!   selection strategy of Sec. 6.1; bottom-up scanning for negative query
//!   coordinates).
//! * [`cover_tree`] — cover-tree construction and single-tree exact
//!   max-kernel search (`Tree`, Curtin/Ram/Gray FastMKS \[10\]).
//! * [`dual_tree`] — the dual-tree variant (`D-Tree` \[13\]) that also arranges
//!   the queries in a cover tree and processes them in batches.
//!
//! Shared problem-level types (result entries, instrumentation counters)
//! live in [`types`]; the LEMP core crate reuses both the types and — via its
//! bucket adapters — the TA and cover-tree machinery.

#![warn(missing_docs)]

pub mod cover_tree;
pub mod dual_tree;
pub mod export;
pub mod naive;
pub mod ta;
pub mod types;

pub use cover_tree::CoverTree;
pub use dual_tree::DualTree;
pub use export::ExportError;
pub use naive::Naive;
pub use ta::TaIndex;
pub use types::{Entry, RetrievalCounters, TopKLists};
