//! Cover tree construction and single-tree exact max-kernel search.
//!
//! This is the paper's `Tree` baseline \[10\] (Curtin, Ram, Gray: "Fast exact
//! max-kernel search", FastMKS on cover trees \[12\]). The tree is built with
//! a simplified insertion procedure (in the spirit of Izbicki & Shelton's
//! *simplified cover tree*): every node stores one point; a child `c` of a
//! node `p` at level `l` satisfies the covering invariant
//! `d(p, c) ≤ base^l`, and child levels strictly decrease. After
//! construction every node's *furthest descendant distance* λ is computed
//! exactly, which is the only quantity search correctness relies on.
//!
//! For the linear kernel the FastMKS node bound is
//!
//! ```text
//! max_{p ∈ descendants(N)} qᵀp  ≤  qᵀc_N + ‖q‖ · λ_N        (Cauchy–Schwarz)
//! ```
//!
//! Search is best-first over that bound, so for Row-Top-k it can stop the
//! moment the largest outstanding bound cannot beat the running k-th best —
//! exactly the pruning the paper describes ("the spheres are exploited to
//! avoid processing subtrees that cannot contribute to the result").

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use lemp_linalg::{kernels, TopK, VectorStore};

use crate::types::{Entry, RetrievalCounters, TopKLists};

/// Base parameter used in the paper's experiments ("the base parameter of
/// the cover trees was set to 1.3 as suggested in \[13\]").
pub const DEFAULT_BASE: f64 = 1.3;

/// A cover tree over a set of points, supporting exact max-kernel search
/// with the inner-product kernel.
#[derive(Debug, Clone)]
pub struct CoverTree {
    points: VectorStore,
    norms: Vec<f64>,
    level: Vec<i32>,
    children: Vec<Vec<u32>>,
    parent: Vec<u32>,
    /// Exact furthest-descendant distance per node.
    lambda: Vec<f64>,
    root: Option<u32>,
    base: f64,
    build_ns: u64,
}

/// Max-heap entry for best-first search.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    bound: f64,
    node: u32,
}

impl Eq for Scored {}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound.partial_cmp(&other.bound).expect("finite bounds")
    }
}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

const NO_PARENT: u32 = u32::MAX;

impl CoverTree {
    /// Builds a tree over `points` by sequential insertion.
    pub fn build(points: &VectorStore, base: f64) -> Self {
        assert!(base > 1.0, "cover tree base must exceed 1");
        let start = Instant::now();
        let n = points.len();
        let mut tree = Self {
            points: points.clone(),
            norms: points.lengths(),
            level: vec![0; n],
            children: vec![Vec::new(); n],
            parent: vec![NO_PARENT; n],
            lambda: vec![0.0; n],
            root: None,
            base,
            build_ns: 0,
        };
        for i in 0..n as u32 {
            tree.insert(i);
        }
        tree.compute_lambdas();
        tree.build_ns = start.elapsed().as_nanos() as u64;
        tree
    }

    /// Index-construction time in nanoseconds.
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    #[inline]
    fn covdist(&self, node: u32) -> f64 {
        self.base.powi(self.level[node as usize])
    }

    #[inline]
    fn dist(&self, a: u32, b: u32) -> f64 {
        kernels::dist(self.points.vector(a as usize), self.points.vector(b as usize))
    }

    /// Smallest level `l` with `base^l ≥ d`.
    fn level_for(&self, d: f64) -> i32 {
        if d <= 0.0 {
            return i32::MIN / 2; // any level covers a zero distance
        }
        (d.ln() / self.base.ln()).ceil() as i32
    }

    fn insert(&mut self, x: u32) {
        let Some(mut root) = self.root else {
            self.root = Some(x);
            self.level[x as usize] = 0;
            return;
        };
        // Raise the root until it covers x.
        while self.dist(root, x) > self.covdist(root) {
            if self.children[root as usize].is_empty() {
                // A childless root can simply take a higher level.
                self.level[root as usize] = self.level_for(self.dist(root, x));
            } else {
                // Pull a leaf up to become the new root (Izbicki–Shelton
                // style), at a level high enough to cover the old root.
                let leaf = self.detach_some_leaf(root);
                let lvl = self.level_for(self.dist(leaf, root)).max(self.level[root as usize] + 1);
                self.level[leaf as usize] = lvl;
                self.children[leaf as usize].push(root);
                self.parent[root as usize] = leaf;
                self.root = Some(leaf);
                root = leaf;
            }
        }
        // Descend: any child that covers x adopts the insertion.
        let mut p = root;
        'descend: loop {
            for &c in &self.children[p as usize] {
                if self.dist(c, x) <= self.covdist(c) {
                    p = c;
                    continue 'descend;
                }
            }
            break;
        }
        self.level[x as usize] = self.level[p as usize] - 1;
        self.children[p as usize].push(x);
        self.parent[x as usize] = p;
    }

    /// Removes and returns some leaf of the subtree under `node`
    /// (first-child walk). `node` must have children.
    fn detach_some_leaf(&mut self, node: u32) -> u32 {
        let mut cur = node;
        while let Some(&c) = self.children[cur as usize].first() {
            cur = c;
        }
        let parent = self.parent[cur as usize];
        debug_assert_ne!(parent, NO_PARENT);
        let siblings = &mut self.children[parent as usize];
        let pos = siblings.iter().position(|&c| c == cur).expect("child registered in parent");
        siblings.swap_remove(pos);
        self.parent[cur as usize] = NO_PARENT;
        cur
    }

    /// Exact λ per node: for every node, every ancestor's λ is raised to the
    /// distance between their points. O(n · depth) distance computations.
    fn compute_lambdas(&mut self) {
        for l in self.lambda.iter_mut() {
            *l = 0.0;
        }
        for x in 0..self.points.len() as u32 {
            let mut a = self.parent[x as usize];
            while a != NO_PARENT {
                let d = self.dist(a, x);
                if d > self.lambda[a as usize] {
                    self.lambda[a as usize] = d;
                }
                a = self.parent[a as usize];
            }
        }
    }

    /// FastMKS bound on `qᵀp` over all descendants of `node` (the node's own
    /// point scores exactly `score`).
    #[inline]
    fn node_bound(&self, score: f64, q_norm: f64, node: u32) -> f64 {
        // Relative slack: the bound compares float-evaluated quantities, so
        // widen it slightly to never prune an exact boundary descendant.
        let b = score + q_norm * self.lambda[node as usize];
        b + 1e-12 * (1.0 + b.abs())
    }

    /// Row-Top-k for one query into a reusable [`TopK`]; returns the number
    /// of inner products computed.
    pub fn query_top_k_into(&self, q: &[f64], top: &mut TopK) -> u64 {
        let Some(root) = self.root else {
            return 0;
        };
        let q_norm = kernels::norm(q);
        let mut dots = 0u64;
        let mut heap = BinaryHeap::new();
        let score = kernels::dot(q, self.points.vector(root as usize));
        dots += 1;
        top.push(root as usize, score);
        heap.push(Scored { bound: self.node_bound(score, q_norm, root), node: root });
        while let Some(Scored { bound, node }) = heap.pop() {
            if top.is_full() && bound <= top.threshold() {
                break; // max-heap: every remaining bound is ≤ this one
            }
            for &c in &self.children[node as usize] {
                let s = kernels::dot(q, self.points.vector(c as usize));
                dots += 1;
                top.push(c as usize, s);
                let b = self.node_bound(s, q_norm, c);
                if !(top.is_full() && b <= top.threshold()) {
                    heap.push(Scored { bound: b, node: c });
                }
            }
        }
        dots
    }

    /// Above-θ for one query; appends `(probe_id, value)` pairs and returns
    /// the number of inner products computed.
    pub fn query_above_into(&self, q: &[f64], theta: f64, out: &mut Vec<(u32, f64)>) -> u64 {
        let Some(root) = self.root else {
            return 0;
        };
        let q_norm = kernels::norm(q);
        let mut dots = 0u64;
        let mut stack = Vec::new();
        let score = kernels::dot(q, self.points.vector(root as usize));
        dots += 1;
        if score >= theta {
            out.push((root, score));
        }
        if self.node_bound(score, q_norm, root) >= theta {
            stack.push(root);
        }
        while let Some(node) = stack.pop() {
            for &c in &self.children[node as usize] {
                let s = kernels::dot(q, self.points.vector(c as usize));
                dots += 1;
                if s >= theta {
                    out.push((c, s));
                }
                if self.node_bound(s, q_norm, c) >= theta {
                    stack.push(c);
                }
            }
        }
        dots
    }

    /// Solves Row-Top-k for every query.
    pub fn row_top_k(&self, queries: &VectorStore, k: usize) -> (TopKLists, RetrievalCounters) {
        let start = Instant::now();
        let mut lists = Vec::with_capacity(queries.len());
        let mut top = TopK::new(k);
        let mut dots = 0u64;
        for q in queries.iter() {
            dots += self.query_top_k_into(q, &mut top);
            lists.push(top.drain_sorted());
        }
        let results: usize = lists.iter().map(Vec::len).sum();
        let counters = RetrievalCounters {
            preprocess_ns: self.build_ns,
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: dots,
            queries: queries.len() as u64,
            results: results as u64,
            ..Default::default()
        };
        (lists, counters)
    }

    /// Solves Above-θ for every query.
    pub fn above_theta(
        &self,
        queries: &VectorStore,
        theta: f64,
    ) -> (Vec<Entry>, RetrievalCounters) {
        let start = Instant::now();
        let mut entries = Vec::new();
        let mut row: Vec<(u32, f64)> = Vec::new();
        let mut dots = 0u64;
        for (i, q) in queries.iter().enumerate() {
            row.clear();
            dots += self.query_above_into(q, theta, &mut row);
            entries.extend(row.iter().map(|&(j, v)| Entry { query: i as u32, probe: j, value: v }));
        }
        let counters = RetrievalCounters {
            preprocess_ns: self.build_ns,
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: dots,
            queries: queries.len() as u64,
            results: entries.len() as u64,
            ..Default::default()
        };
        (entries, counters)
    }

    /// Validates the structural invariants; used by tests.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn validate_invariants(&self) -> Result<(), String> {
        let n = self.points.len();
        if n == 0 {
            return if self.root.is_none() { Ok(()) } else { Err("root in empty tree".into()) };
        }
        let root = self.root.ok_or("missing root")?;
        if self.parent[root as usize] != NO_PARENT {
            return Err("root has a parent".into());
        }
        // Every node reachable exactly once; covering and level invariants.
        let mut visited = vec![false; n];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(p) = stack.pop() {
            if visited[p as usize] {
                return Err(format!("node {p} visited twice"));
            }
            visited[p as usize] = true;
            count += 1;
            for &c in &self.children[p as usize] {
                if self.parent[c as usize] != p {
                    return Err(format!("child {c} does not point back to parent {p}"));
                }
                if self.level[c as usize] >= self.level[p as usize] {
                    return Err(format!("child {c} level not below parent {p}"));
                }
                if self.dist(p, c) > self.covdist(p) * (1.0 + 1e-9) {
                    return Err(format!("covering violated between {p} and {c}"));
                }
                stack.push(c);
            }
        }
        if count != n {
            return Err(format!("only {count} of {n} nodes reachable"));
        }
        // λ is an upper bound on descendant distances (and exact somewhere).
        for x in 0..n as u32 {
            let mut a = self.parent[x as usize];
            while a != NO_PARENT {
                if self.dist(a, x) > self.lambda[a as usize] * (1.0 + 1e-9) {
                    return Err(format!("lambda too small at node {a}"));
                }
                a = self.parent[a as usize];
            }
        }
        Ok(())
    }

    /// Read access for the dual-tree traversal.
    pub(crate) fn root(&self) -> Option<u32> {
        self.root
    }
    pub(crate) fn level_of(&self, node: u32) -> i32 {
        self.level[node as usize]
    }
    pub(crate) fn children_of(&self, node: u32) -> &[u32] {
        &self.children[node as usize]
    }
    pub(crate) fn lambda_of(&self, node: u32) -> f64 {
        self.lambda[node as usize]
    }
    pub(crate) fn norm_of(&self, node: u32) -> f64 {
        self.norms[node as usize]
    }
    pub(crate) fn point(&self, node: u32) -> &[f64] {
        self.points.vector(node as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use crate::types::{canonical_pairs, topk_equivalent};
    use lemp_data::synthetic::GeneratorConfig;

    fn random_pair(m: usize, n: usize, dim: usize, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, dim, 0.8).generate(seed);
        let p = GeneratorConfig::gaussian(n, dim, 0.8).generate(seed + 1);
        (q, p)
    }

    #[test]
    fn invariants_hold_on_random_data() {
        for seed in 0..4 {
            let p = GeneratorConfig::gaussian(300, 6, 1.2).generate(seed);
            let t = CoverTree::build(&p, DEFAULT_BASE);
            t.validate_invariants().unwrap();
        }
    }

    #[test]
    fn invariants_hold_on_adversarial_orders() {
        // Increasing distance from origin (worst case for root raising).
        let rows: Vec<Vec<f64>> = (1..200).map(|i| vec![i as f64, 0.0]).collect();
        let p = VectorStore::from_rows(&rows).unwrap();
        let t = CoverTree::build(&p, DEFAULT_BASE);
        t.validate_invariants().unwrap();
        // Decreasing.
        let rows: Vec<Vec<f64>> = (1..200).rev().map(|i| vec![i as f64, 0.0]).collect();
        let p = VectorStore::from_rows(&rows).unwrap();
        let t = CoverTree::build(&p, DEFAULT_BASE);
        t.validate_invariants().unwrap();
    }

    #[test]
    fn duplicates_are_tolerated() {
        let p = VectorStore::from_rows(&vec![vec![1.0, 2.0]; 20]).unwrap();
        let t = CoverTree::build(&p, DEFAULT_BASE);
        t.validate_invariants().unwrap();
        let q = VectorStore::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let (lists, _) = t.row_top_k(&q, 5);
        assert_eq!(lists[0].len(), 5);
    }

    #[test]
    fn top_k_agrees_with_naive() {
        let (q, p) = random_pair(25, 150, 8, 40);
        let t = CoverTree::build(&p, DEFAULT_BASE);
        for k in [1usize, 4, 11] {
            let (got, _) = t.row_top_k(&q, k);
            let (expect, _) = Naive.row_top_k(&q, &p, k);
            assert!(topk_equivalent(&got, &expect, 1e-9), "k {k}");
        }
    }

    #[test]
    fn above_theta_agrees_with_naive() {
        let (q, p) = random_pair(25, 150, 8, 50);
        let t = CoverTree::build(&p, DEFAULT_BASE);
        for theta in [0.3, 1.0, 3.0] {
            let (got, _) = t.above_theta(&q, theta);
            let (expect, _) = Naive.above_theta(&q, &p, theta);
            assert_eq!(canonical_pairs(&got), canonical_pairs(&expect), "theta {theta}");
        }
    }

    #[test]
    fn pruning_saves_work_on_skewed_lengths() {
        // High length skew: most probes are short and prunable.
        let p = GeneratorConfig::gaussian(2000, 8, 3.0).generate(60);
        let q = GeneratorConfig::gaussian(50, 8, 0.3).generate(61);
        let t = CoverTree::build(&p, DEFAULT_BASE);
        let (_, counters) = t.row_top_k(&q, 1);
        let full = (q.len() * p.len()) as u64;
        assert!(
            counters.candidates < full / 2,
            "expected pruning, evaluated {} of {full}",
            counters.candidates
        );
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty = VectorStore::empty(3).unwrap();
        let t = CoverTree::build(&empty, DEFAULT_BASE);
        t.validate_invariants().unwrap();
        let q = VectorStore::from_rows(&[vec![1.0, 0.0, 0.0]]).unwrap();
        let (lists, _) = t.row_top_k(&q, 2);
        assert!(lists[0].is_empty());

        let single = VectorStore::from_rows(&[vec![2.0, 0.0, 0.0]]).unwrap();
        let t = CoverTree::build(&single, DEFAULT_BASE);
        t.validate_invariants().unwrap();
        let (lists, _) = t.row_top_k(&q, 2);
        assert_eq!(lists[0].len(), 1);
        assert!((lists[0][0].score - 2.0).abs() < 1e-12);
        let (entries, _) = t.above_theta(&q, 1.0);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn base_must_exceed_one() {
        let p = VectorStore::from_rows(&[vec![1.0]]).unwrap();
        let ok = std::panic::catch_unwind(|| CoverTree::build(&p, 1.0));
        assert!(ok.is_err());
    }
}
