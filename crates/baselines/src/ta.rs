//! The threshold algorithm (TA) of Fagin et al., adapted to inner products.
//!
//! Sec. 5 of the paper: "TA arranges the values of each coordinate of the
//! probe vectors in a sorted list, one per coordinate. Given a query, TA
//! repeatedly selects a suitable list …, retrieves the next vector from the
//! top of the list, and maintains the set of the top-k results seen so far.
//! TA uses a termination criterion to stop processing as early as possible."
//! and "the only difference is that sorted lists need to be processed
//! bottom-to-top when the respective coordinate of the query vector is
//! negative."
//!
//! List selection follows the paper's experimental setup (Sec. 6.1): "we
//! followed common practice and selected in each step the sorted list `i`
//! that maximized `qᵢpᵢ`, where `pᵢ` refers to the next coordinate value in
//! list `i` … we implemented it efficiently using a max-heap."

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use lemp_linalg::{kernels, TopK, VectorStore};

use crate::types::{Entry, RetrievalCounters, TopKLists};

/// Per-coordinate descending sorted lists over a probe store, plus the store
/// itself for random-access verification.
#[derive(Debug, Clone)]
pub struct TaIndex {
    probes: VectorStore,
    /// `ids[f]` — probe ids sorted by descending coordinate `f`.
    ids: Vec<Vec<u32>>,
    /// `vals[f][rank]` — the coordinate value of `ids[f][rank]`.
    vals: Vec<Vec<f64>>,
    build_ns: u64,
}

/// A heap entry: the marginal contribution `q_f · v` of the next unread
/// value `v` of list `f`. Max-heap on `contrib`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Frontier {
    contrib: f64,
    list: u32,
    /// Next unread rank in the list (top-down for positive `q_f`,
    /// bottom-up for negative).
    rank: u32,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.contrib.partial_cmp(&other.contrib).expect("finite contributions")
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Numerical slack on the incremental termination bound `T`; being
/// conservative here only delays termination, never drops results.
const T_SLACK: f64 = 1e-9;

impl TaIndex {
    /// Builds the `r` sorted lists in O(r·n·log n).
    pub fn build(probes: &VectorStore) -> Self {
        let start = Instant::now();
        let n = probes.len();
        let dim = probes.dim();
        let mut ids = Vec::with_capacity(dim);
        let mut vals = Vec::with_capacity(dim);
        let mut order: Vec<u32> = (0..n as u32).collect();
        for f in 0..dim {
            order.sort_by(|&a, &b| {
                let va = probes.vector(a as usize)[f];
                let vb = probes.vector(b as usize)[f];
                vb.partial_cmp(&va).expect("finite coordinates").then(a.cmp(&b))
            });
            ids.push(order.clone());
            vals.push(order.iter().map(|&i| probes.vector(i as usize)[f]).collect());
        }
        Self { probes: probes.clone(), ids, vals, build_ns: start.elapsed().as_nanos() as u64 }
    }

    /// Index-construction time in nanoseconds.
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }

    /// Number of indexed probe vectors.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// `true` if no probe vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Initializes the frontier heap and the initial bound `T` for a query.
    fn init_frontiers(&self, q: &[f64], heap: &mut BinaryHeap<Frontier>) -> f64 {
        heap.clear();
        let n = self.probes.len();
        if n == 0 {
            return 0.0;
        }
        let mut t = 0.0;
        for (f, &qf) in q.iter().enumerate() {
            if qf == 0.0 {
                continue;
            }
            let rank = if qf > 0.0 { 0 } else { n - 1 };
            let contrib = qf * self.vals[f][rank];
            t += contrib;
            heap.push(Frontier { contrib, list: f as u32, rank: rank as u32 });
        }
        t
    }

    /// Advances list `fr.list` one step in its scan direction; returns the
    /// next frontier if the list is not exhausted.
    fn advance(&self, q: &[f64], fr: Frontier) -> Option<Frontier> {
        let f = fr.list as usize;
        let qf = q[f];
        let n = self.vals[f].len();
        let next_rank = if qf > 0.0 {
            let r = fr.rank as usize + 1;
            if r >= n {
                return None;
            }
            r
        } else {
            if fr.rank == 0 {
                return None;
            }
            fr.rank as usize - 1
        };
        Some(Frontier {
            contrib: qf * self.vals[f][next_rank],
            list: fr.list,
            rank: next_rank as u32,
        })
    }

    /// Above-θ for a single query; appends `(probe_id, value)` pairs.
    /// Returns the number of full inner products computed.
    pub fn query_above_into(
        &self,
        q: &[f64],
        theta: f64,
        seen: &mut SeenSet,
        out: &mut Vec<(u32, f64)>,
    ) -> u64 {
        let n = self.probes.len();
        let mut heap = BinaryHeap::new();
        let mut t = self.init_frontiers(q, &mut heap);
        seen.begin_query();
        let mut dots = 0u64;
        let mut seen_count = 0usize;
        // All-zero query: every inner product is 0.
        if heap.is_empty() {
            if 0.0 >= theta {
                out.extend((0..n as u32).map(|j| (j, 0.0)));
            }
            return 0;
        }
        while let Some(fr) = heap.pop() {
            if t < theta - T_SLACK * (1.0 + theta.abs()) {
                break; // no unseen vector can reach θ
            }
            let id = self.ids[fr.list as usize][fr.rank as usize];
            if seen.insert(id) {
                let v = kernels::dot(q, self.probes.vector(id as usize));
                dots += 1;
                seen_count += 1;
                if v >= theta {
                    out.push((id, v));
                }
                if seen_count == n {
                    break; // every probe evaluated
                }
            }
            if let Some(next) = self.advance(q, fr) {
                t += next.contrib - fr.contrib;
                heap.push(next);
            } else {
                t -= fr.contrib;
            }
        }
        dots
    }

    /// Row-Top-k for a single query into a reusable [`TopK`]. Returns the
    /// number of full inner products computed.
    pub fn query_top_k_into(&self, q: &[f64], top: &mut TopK, seen: &mut SeenSet) -> u64 {
        let n = self.probes.len();
        let mut heap = BinaryHeap::new();
        let mut t = self.init_frontiers(q, &mut heap);
        seen.begin_query();
        let mut dots = 0u64;
        let mut seen_count = 0usize;
        if heap.is_empty() {
            // All-zero query: any k probes tie at score 0.
            for j in 0..n.min(top.k()) {
                top.push(j, 0.0);
            }
            return 0;
        }
        while let Some(fr) = heap.pop() {
            if top.is_full() && top.threshold() >= t + T_SLACK * (1.0 + t.abs()) {
                break; // no unseen vector can enter the top-k
            }
            let id = self.ids[fr.list as usize][fr.rank as usize];
            if seen.insert(id) {
                let v = kernels::dot(q, self.probes.vector(id as usize));
                dots += 1;
                seen_count += 1;
                top.push(id as usize, v);
                if seen_count == n {
                    break;
                }
            }
            if let Some(next) = self.advance(q, fr) {
                t += next.contrib - fr.contrib;
                heap.push(next);
            } else {
                t -= fr.contrib;
            }
        }
        dots
    }

    /// Solves Above-θ for every query.
    pub fn above_theta(
        &self,
        queries: &VectorStore,
        theta: f64,
    ) -> (Vec<Entry>, RetrievalCounters) {
        let start = Instant::now();
        let mut entries = Vec::new();
        let mut seen = SeenSet::new(self.probes.len());
        let mut row: Vec<(u32, f64)> = Vec::new();
        let mut dots = 0u64;
        for (i, q) in queries.iter().enumerate() {
            row.clear();
            dots += self.query_above_into(q, theta, &mut seen, &mut row);
            entries.extend(row.iter().map(|&(j, v)| Entry { query: i as u32, probe: j, value: v }));
        }
        let counters = RetrievalCounters {
            preprocess_ns: self.build_ns,
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: dots,
            queries: queries.len() as u64,
            results: entries.len() as u64,
            ..Default::default()
        };
        (entries, counters)
    }

    /// Solves Row-Top-k for every query.
    pub fn row_top_k(&self, queries: &VectorStore, k: usize) -> (TopKLists, RetrievalCounters) {
        let start = Instant::now();
        let mut lists = Vec::with_capacity(queries.len());
        let mut top = TopK::new(k);
        let mut seen = SeenSet::new(self.probes.len());
        let mut dots = 0u64;
        for q in queries.iter() {
            dots += self.query_top_k_into(q, &mut top, &mut seen);
            lists.push(top.drain_sorted());
        }
        let results: usize = lists.iter().map(Vec::len).sum();
        let counters = RetrievalCounters {
            preprocess_ns: self.build_ns,
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: dots,
            queries: queries.len() as u64,
            results: results as u64,
            ..Default::default()
        };
        (lists, counters)
    }
}

/// An epoch-stamped membership set over `[0, n)`: `begin_query` is O(1)
/// instead of clearing (same trick the paper's Appendix A applies to the CP
/// array).
#[derive(Debug, Clone)]
pub struct SeenSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl SeenSet {
    /// A set over ids `0..n`, initially empty.
    pub fn new(n: usize) -> Self {
        Self { stamp: vec![0; n], epoch: 0 }
    }

    /// Grows the id universe to at least `n` (new ids start absent).
    pub fn resize(&mut self, n: usize) {
        if n > self.stamp.len() {
            self.stamp.resize(n, 0);
        }
    }

    /// Empties the set in O(1) (epoch bump; wraps by clearing).
    pub fn begin_query(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `id`; returns `true` if it was not yet present.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use crate::types::{canonical_pairs, topk_equivalent};
    use lemp_data::synthetic::GeneratorConfig;

    fn random_pair(m: usize, n: usize, dim: usize, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, dim, 0.8).generate(seed);
        let p = GeneratorConfig::gaussian(n, dim, 0.8).generate(seed + 1);
        (q, p)
    }

    #[test]
    fn above_theta_agrees_with_naive() {
        let (q, p) = random_pair(40, 120, 8, 10);
        let idx = TaIndex::build(&p);
        for theta in [0.2, 0.8, 2.0] {
            let (got, counters) = idx.above_theta(&q, theta);
            let (expect, _) = Naive.above_theta(&q, &p, theta);
            assert_eq!(canonical_pairs(&got), canonical_pairs(&expect), "theta {theta}");
            assert!(counters.candidates <= (q.len() * p.len()) as u64);
        }
    }

    #[test]
    fn top_k_agrees_with_naive() {
        let (q, p) = random_pair(30, 100, 6, 20);
        let idx = TaIndex::build(&p);
        for k in [1usize, 3, 10] {
            let (got, _) = idx.row_top_k(&q, k);
            let (expect, _) = Naive.row_top_k(&q, &p, k);
            assert!(topk_equivalent(&got, &expect, 1e-9), "k {k}");
        }
    }

    #[test]
    fn negative_coordinates_scan_bottom_up_correctly() {
        // Queries with strictly negative coordinates exercise the bottom-up
        // list direction.
        let q = VectorStore::from_rows(&[vec![-1.0, -2.0], vec![-3.0, 0.5]]).unwrap();
        let p = GeneratorConfig::gaussian(80, 2, 0.5).generate(3);
        let idx = TaIndex::build(&p);
        let (got, _) = idx.row_top_k(&q, 5);
        let (expect, _) = Naive.row_top_k(&q, &p, 5);
        assert!(topk_equivalent(&got, &expect, 1e-9));
        let (got, _) = idx.above_theta(&q, 0.5);
        let (expect, _) = Naive.above_theta(&q, &p, 0.5);
        assert_eq!(canonical_pairs(&got), canonical_pairs(&expect));
    }

    #[test]
    fn zero_query_vector_is_handled() {
        let q = VectorStore::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let p = GeneratorConfig::gaussian(10, 2, 0.5).generate(4);
        let idx = TaIndex::build(&p);
        // θ > 0: nothing qualifies
        let (got, _) = idx.above_theta(&q, 0.1);
        assert!(got.is_empty());
        // θ ≤ 0: everything qualifies at value 0
        let (got, _) = idx.above_theta(&q, 0.0);
        assert_eq!(got.len(), 10);
        // top-k still returns k items (all tied at 0)
        let (lists, _) = idx.row_top_k(&q, 3);
        assert_eq!(lists[0].len(), 3);
        assert!(lists[0].iter().all(|s| s.score == 0.0));
    }

    #[test]
    fn early_termination_prunes_on_skewed_data() {
        // One very long probe dominates; TA must stop long before scanning
        // everything for k = 1.
        let mut rows = vec![vec![100.0, 100.0]];
        for i in 0..500 {
            let x = 0.001 + (i as f64) * 1e-6;
            rows.push(vec![x, x]);
        }
        let p = VectorStore::from_rows(&rows).unwrap();
        let q = VectorStore::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let idx = TaIndex::build(&p);
        let (lists, counters) = idx.row_top_k(&q, 1);
        assert_eq!(lists[0][0].id, 0);
        assert!(
            counters.candidates < 20,
            "expected early termination, evaluated {}",
            counters.candidates
        );
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let (q, p) = random_pair(5, 12, 4, 30);
        let idx = TaIndex::build(&p);
        let (lists, _) = idx.row_top_k(&q, 50);
        for l in &lists {
            assert_eq!(l.len(), 12);
        }
    }

    #[test]
    fn empty_probe_store() {
        let p = VectorStore::empty(3).unwrap();
        let q = VectorStore::from_rows(&[vec![1.0, 0.0, 0.0]]).unwrap();
        let idx = TaIndex::build(&p);
        let (e, _) = idx.above_theta(&q, 0.5);
        assert!(e.is_empty());
        let (l, _) = idx.row_top_k(&q, 3);
        assert!(l[0].is_empty());
    }

    #[test]
    fn seen_set_epochs() {
        let mut s = SeenSet::new(4);
        s.begin_query();
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert!(s.contains(2));
        s.begin_query();
        assert!(!s.contains(2));
        assert!(s.insert(2));
    }

    #[test]
    fn sparse_probe_data_agrees_with_naive() {
        let q = GeneratorConfig::sparse(20, 10, 1.0, 0.3).generate(5);
        let p = GeneratorConfig::sparse(60, 10, 1.0, 0.3).generate(6);
        let idx = TaIndex::build(&p);
        let (got, _) = idx.above_theta(&q, 0.7);
        let (expect, _) = Naive.above_theta(&q, &p, 0.7);
        assert_eq!(canonical_pairs(&got), canonical_pairs(&expect));
    }
}
