//! Dual-tree exact max-kernel search (the paper's `D-Tree` baseline \[13\]).
//!
//! Both the query and the probe set are arranged in cover trees; the search
//! walks *pairs* of nodes so bound computations are shared across whole
//! groups of queries. For a pair of nodes with centers `q_c`, `p_c` and
//! furthest-descendant distances `λ_q`, `λ_p`, every descendant pair obeys
//!
//! ```text
//! qᵀp ≤ q_cᵀp_c + λ_q‖p_c‖ + λ_p‖q_c‖ + λ_qλ_p
//! ```
//!
//! For Row-Top-k the pair is pruned against a *group* threshold — the
//! minimum running k-th best over all queries below the query node — which
//! is exactly why the paper finds the dual tree weaker than the single tree
//! for top-k ("the bounds for a group of queries depend on the worst running
//! lower bound θ′ among all queries of the group"). Group thresholds are
//! cached per node and refreshed periodically; a stale cache is always a
//! valid *lower* bound (thresholds only grow), so pruning stays exact.
//!
//! Traversal: every node's point is represented as an explicit *self leaf*
//! when the node expands, so each (query point, probe point) pair is reached
//! exactly once; the side with the higher cover-tree level expands first.

use std::time::Instant;

use lemp_linalg::{kernels, TopK, VectorStore};

use crate::cover_tree::CoverTree;
use crate::types::{Entry, RetrievalCounters, TopKLists};

/// Dual cover trees over queries and probes.
#[derive(Debug, Clone)]
pub struct DualTree {
    qtree: CoverTree,
    ptree: CoverTree,
    /// BFS order of query-tree nodes (parents first), for threshold refresh.
    q_bfs: Vec<u32>,
    build_ns: u64,
}

/// A traversal handle: a tree node, or the *self leaf* carrying only the
/// node's own point (λ = 0, never expandable).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Handle {
    node: u32,
    self_leaf: bool,
}

impl DualTree {
    /// Builds both trees.
    pub fn build(queries: &VectorStore, probes: &VectorStore, base: f64) -> Self {
        let start = Instant::now();
        let qtree = CoverTree::build(queries, base);
        let ptree = CoverTree::build(probes, base);
        let q_bfs = bfs_order(&qtree);
        Self { qtree, ptree, q_bfs, build_ns: start.elapsed().as_nanos() as u64 }
    }

    /// Tree-construction time (both trees) in nanoseconds.
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }

    fn pair_bound(&self, s: f64, qa: Handle, pb: Handle) -> f64 {
        let lq = if qa.self_leaf { 0.0 } else { self.qtree.lambda_of(qa.node) };
        let lp = if pb.self_leaf { 0.0 } else { self.ptree.lambda_of(pb.node) };
        let b = s + lq * self.ptree.norm_of(pb.node) + lp * self.qtree.norm_of(qa.node) + lq * lp;
        // Relative slack against float rounding at exact boundaries.
        b + 1e-12 * (1.0 + b.abs())
    }

    fn expandable_q(&self, h: Handle) -> bool {
        !h.self_leaf && !self.qtree.children_of(h.node).is_empty()
    }

    fn expandable_p(&self, h: Handle) -> bool {
        !h.self_leaf && !self.ptree.children_of(h.node).is_empty()
    }

    /// Solves Above-θ for every query.
    pub fn above_theta(&self, theta: f64) -> (Vec<Entry>, RetrievalCounters) {
        let start = Instant::now();
        let mut entries = Vec::new();
        let mut dots = 0u64;
        if let (Some(qr), Some(pr)) = (self.qtree.root(), self.ptree.root()) {
            let mut stack = vec![(
                Handle { node: qr, self_leaf: false },
                Handle { node: pr, self_leaf: false },
            )];
            while let Some((qa, pb)) = stack.pop() {
                let s = kernels::dot(self.qtree.point(qa.node), self.ptree.point(pb.node));
                dots += 1;
                if self.pair_bound(s, qa, pb) < theta {
                    continue;
                }
                let can_q = self.expandable_q(qa);
                let can_p = self.expandable_p(pb);
                if !can_q && !can_p {
                    if s >= theta {
                        entries.push(Entry { query: qa.node, probe: pb.node, value: s });
                    }
                    continue;
                }
                self.expand(qa, pb, can_q, can_p, &mut stack);
            }
        }
        let counters = RetrievalCounters {
            preprocess_ns: self.build_ns,
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: dots,
            queries: self.qtree.len() as u64,
            results: entries.len() as u64,
            ..Default::default()
        };
        (entries, counters)
    }

    /// Solves Row-Top-k for every query.
    pub fn row_top_k(&self, k: usize) -> (TopKLists, RetrievalCounters) {
        let start = Instant::now();
        let m = self.qtree.len();
        let mut tops: Vec<TopK> = (0..m).map(|_| TopK::new(k)).collect();
        let mut dots = 0u64;
        if k > 0 {
            if let (Some(qr), Some(pr)) = (self.qtree.root(), self.ptree.root()) {
                // Cached lower bound of the subtree-min threshold per query
                // node; refreshed every `refresh_every` evaluations.
                let mut node_thr = vec![f64::NEG_INFINITY; m];
                let refresh_every = (m as u64).max(1024);
                let mut next_refresh = refresh_every;
                let mut stack = vec![(
                    Handle { node: qr, self_leaf: false },
                    Handle { node: pr, self_leaf: false },
                )];
                while let Some((qa, pb)) = stack.pop() {
                    let s = kernels::dot(self.qtree.point(qa.node), self.ptree.point(pb.node));
                    dots += 1;
                    if dots >= next_refresh {
                        refresh_node_thr(&self.qtree, &self.q_bfs, &tops, &mut node_thr);
                        next_refresh = dots + refresh_every;
                    }
                    let can_q = self.expandable_q(qa);
                    let can_p = self.expandable_p(pb);
                    let group_thr = if qa.self_leaf || !can_q {
                        tops[qa.node as usize].threshold()
                    } else {
                        node_thr[qa.node as usize]
                    };
                    if self.pair_bound(s, qa, pb) <= group_thr {
                        continue;
                    }
                    if !can_q && !can_p {
                        tops[qa.node as usize].push(pb.node as usize, s);
                        continue;
                    }
                    self.expand(qa, pb, can_q, can_p, &mut stack);
                }
            }
        }
        let lists: TopKLists = tops.iter_mut().map(TopK::drain_sorted).collect();
        let results: usize = lists.iter().map(Vec::len).sum();
        let counters = RetrievalCounters {
            preprocess_ns: self.build_ns,
            retrieval_ns: start.elapsed().as_nanos() as u64,
            candidates: dots,
            queries: m as u64,
            results: results as u64,
            ..Default::default()
        };
        (lists, counters)
    }

    /// Pushes the children pairs of one expansion step. The side with the
    /// higher cover-tree level expands (ties favour the probe side), so each
    /// point pair has a unique traversal path.
    fn expand(
        &self,
        qa: Handle,
        pb: Handle,
        can_q: bool,
        can_p: bool,
        stack: &mut Vec<(Handle, Handle)>,
    ) {
        let expand_q = if can_q && can_p {
            self.qtree.level_of(qa.node) > self.ptree.level_of(pb.node)
        } else {
            can_q
        };
        if expand_q {
            stack.push((Handle { node: qa.node, self_leaf: true }, pb));
            for &c in self.qtree.children_of(qa.node) {
                stack.push((Handle { node: c, self_leaf: false }, pb));
            }
        } else {
            stack.push((qa, Handle { node: pb.node, self_leaf: true }));
            for &c in self.ptree.children_of(pb.node) {
                stack.push((qa, Handle { node: c, self_leaf: false }));
            }
        }
    }
}

/// BFS order (parents before children) of a cover tree.
fn bfs_order(tree: &CoverTree) -> Vec<u32> {
    let mut order = Vec::with_capacity(tree.len());
    if let Some(root) = tree.root() {
        let mut frontier = vec![root];
        while let Some(x) = frontier.pop() {
            order.push(x);
            frontier.extend_from_slice(tree.children_of(x));
        }
    }
    order
}

/// Exact subtree-min thresholds, computed children-first.
fn refresh_node_thr(tree: &CoverTree, bfs: &[u32], tops: &[TopK], node_thr: &mut [f64]) {
    for &x in bfs.iter().rev() {
        let mut t = tops[x as usize].threshold();
        for &c in tree.children_of(x) {
            t = t.min(node_thr[c as usize]);
        }
        node_thr[x as usize] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover_tree::DEFAULT_BASE;
    use crate::naive::Naive;
    use crate::types::{canonical_pairs, topk_equivalent};
    use lemp_data::synthetic::GeneratorConfig;

    fn random_pair(m: usize, n: usize, dim: usize, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, dim, 0.8).generate(seed);
        let p = GeneratorConfig::gaussian(n, dim, 0.8).generate(seed + 1);
        (q, p)
    }

    #[test]
    fn above_theta_agrees_with_naive() {
        let (q, p) = random_pair(40, 90, 6, 70);
        let dt = DualTree::build(&q, &p, DEFAULT_BASE);
        for theta in [0.3, 1.0, 2.5] {
            let (got, _) = dt.above_theta(theta);
            let (expect, _) = Naive.above_theta(&q, &p, theta);
            assert_eq!(canonical_pairs(&got), canonical_pairs(&expect), "theta {theta}");
        }
    }

    #[test]
    fn top_k_agrees_with_naive() {
        let (q, p) = random_pair(30, 80, 6, 80);
        let dt = DualTree::build(&q, &p, DEFAULT_BASE);
        for k in [1usize, 3, 7] {
            let (got, _) = dt.row_top_k(k);
            let (expect, _) = Naive.row_top_k(&q, &p, k);
            assert!(topk_equivalent(&got, &expect, 1e-9), "k {k}");
        }
    }

    #[test]
    fn high_theta_prunes_pairs() {
        let (q, p) = random_pair(60, 200, 6, 90);
        let dt = DualTree::build(&q, &p, DEFAULT_BASE);
        // θ above the maximum entry: everything prunable near the roots.
        let (entries, counters) = dt.above_theta(100.0);
        assert!(entries.is_empty());
        let full = (q.len() * p.len()) as u64;
        assert!(
            counters.candidates < full / 4,
            "expected heavy pruning, evaluated {} of {full}",
            counters.candidates
        );
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let (q, p) = random_pair(10, 20, 4, 95);
        let dt = DualTree::build(&q, &p, DEFAULT_BASE);
        let (lists, counters) = dt.row_top_k(0);
        assert!(lists.iter().all(Vec::is_empty));
        assert_eq!(counters.candidates, 0);
        let (lists, _) = dt.row_top_k(100);
        for l in &lists {
            assert_eq!(l.len(), 20);
        }
    }

    #[test]
    fn empty_sides_produce_empty_results() {
        let empty = VectorStore::empty(4).unwrap();
        let q = GeneratorConfig::gaussian(5, 4, 0.5).generate(1);
        let dt = DualTree::build(&q, &empty, DEFAULT_BASE);
        let (entries, _) = dt.above_theta(0.1);
        assert!(entries.is_empty());
        let (lists, _) = dt.row_top_k(3);
        assert_eq!(lists.len(), 5);
        assert!(lists.iter().all(Vec::is_empty));
    }

    #[test]
    fn duplicate_points_on_both_sides() {
        let q = VectorStore::from_rows(&vec![vec![1.0, 0.5]; 8]).unwrap();
        let p = VectorStore::from_rows(&vec![vec![0.5, 1.0]; 8]).unwrap();
        let dt = DualTree::build(&q, &p, DEFAULT_BASE);
        let (got, _) = dt.above_theta(0.9);
        let (expect, _) = Naive.above_theta(&q, &p, 0.9);
        assert_eq!(canonical_pairs(&got), canonical_pairs(&expect));
        assert_eq!(got.len(), 64); // every pair has value 1.0 ≥ 0.9
    }
}
