//! Result serialization: CSV writers/readers for Above-θ entries and
//! Row-Top-k lists.
//!
//! The formats are deliberately trivial — line-oriented, comma-separated,
//! with a header — so downstream analysis (spreadsheets, pandas, gnuplot)
//! can consume retrieval output directly. Scores are written with
//! round-trippable precision (`{:?}`-style shortest representation that
//! parses back to the same `f64`), and the readers reject malformed input
//! with positioned error messages instead of silently skipping lines.
//!
//! ```
//! use lemp_baselines::export::{read_entries_csv, write_entries_csv};
//! use lemp_baselines::types::Entry;
//!
//! let entries = vec![Entry { query: 0, probe: 3, value: 1.25 }];
//! let mut buf = Vec::new();
//! write_entries_csv(&mut buf, &entries).unwrap();
//! let back = read_entries_csv(&buf[..]).unwrap();
//! assert_eq!(back, entries);
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use lemp_linalg::ScoredItem;

use crate::types::{Entry, TopKLists};

/// Errors raised by result parsing.
#[derive(Debug)]
pub enum ExportError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Malformed content, with 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "io error: {e}"),
            ExportError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<io::Error> for ExportError {
    fn from(e: io::Error) -> Self {
        ExportError::Io(e)
    }
}

const ENTRY_HEADER: &str = "query,probe,value";
const TOPK_HEADER: &str = "query,rank,probe,score";

/// Writes Above-θ entries as `query,probe,value` CSV with a header.
pub fn write_entries_csv<W: Write>(writer: W, entries: &[Entry]) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    writeln!(w, "{ENTRY_HEADER}")?;
    for e in entries {
        writeln!(w, "{},{},{:?}", e.query, e.probe, e.value)?;
    }
    w.flush()
}

/// Reads entries written by [`write_entries_csv`].
///
/// # Errors
/// [`ExportError::Parse`] on a missing/mismatched header, wrong field
/// count, or unparseable numbers; [`ExportError::Io`] on read failure.
pub fn read_entries_csv<R: Read>(reader: R) -> Result<Vec<Entry>, ExportError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != ENTRY_HEADER {
        return Err(ExportError::Parse {
            line: 1,
            message: format!("expected header `{ENTRY_HEADER}`, found `{header}`"),
        });
    }
    let mut entries = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let lineno = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let (q, p, v) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(q), Some(p), Some(v), None) => (q, p, v),
            _ => {
                return Err(ExportError::Parse {
                    line: lineno,
                    message: format!("expected 3 fields, found `{line}`"),
                })
            }
        };
        entries.push(Entry {
            query: parse(q, lineno, "query")?,
            probe: parse(p, lineno, "probe")?,
            value: parse(v, lineno, "value")?,
        });
    }
    Ok(entries)
}

/// Writes Row-Top-k lists as `query,rank,probe,score` CSV with a header;
/// ranks are 1-based per query.
pub fn write_topk_csv<W: Write>(writer: W, lists: &TopKLists) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    writeln!(w, "{TOPK_HEADER}")?;
    for (query, list) in lists.iter().enumerate() {
        for (rank, item) in list.iter().enumerate() {
            writeln!(w, "{query},{},{},{:?}", rank + 1, item.id, item.score)?;
        }
    }
    w.flush()
}

/// Reads lists written by [`write_topk_csv`].
///
/// Queries with no rows come back as empty lists; the result length covers
/// the largest query id present (callers that know the query count can
/// resize). Rows must be grouped by query with ranks `1, 2, …` in order.
///
/// # Errors
/// [`ExportError::Parse`] on header/field/number problems or out-of-order
/// ranks; [`ExportError::Io`] on read failure.
pub fn read_topk_csv<R: Read>(reader: R) -> Result<TopKLists, ExportError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    if header.trim() != TOPK_HEADER {
        return Err(ExportError::Parse {
            line: 1,
            message: format!("expected header `{TOPK_HEADER}`, found `{header}`"),
        });
    }
    let mut lists: TopKLists = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let lineno = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let (q, r, p, s) =
            match (fields.next(), fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some(q), Some(r), Some(p), Some(s), None) => (q, r, p, s),
                _ => {
                    return Err(ExportError::Parse {
                        line: lineno,
                        message: format!("expected 4 fields, found `{line}`"),
                    })
                }
            };
        let query: usize = parse(q, lineno, "query")?;
        let rank: usize = parse(r, lineno, "rank")?;
        let probe: usize = parse(p, lineno, "probe")?;
        let score: f64 = parse(s, lineno, "score")?;
        if query >= lists.len() {
            lists.resize_with(query + 1, Vec::new);
        }
        if rank != lists[query].len() + 1 {
            return Err(ExportError::Parse {
                line: lineno,
                message: format!(
                    "query {query}: expected rank {}, found {rank}",
                    lists[query].len() + 1
                ),
            });
        }
        lists[query].push(ScoredItem { id: probe, score });
    }
    Ok(lists)
}

fn parse<T: std::str::FromStr>(field: &str, line: usize, name: &str) -> Result<T, ExportError> {
    field
        .trim()
        .parse()
        .map_err(|_| ExportError::Parse { line, message: format!("invalid {name}: `{field}`") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<Entry> {
        vec![
            Entry { query: 0, probe: 3, value: 1.25 },
            Entry { query: 0, probe: 7, value: -0.5 },
            Entry { query: 2, probe: 1, value: 1e-300 },
            Entry { query: 4, probe: 0, value: 0.1 + 0.2 }, // non-representable decimal
        ]
    }

    #[test]
    fn entries_roundtrip_bit_exact() {
        let original = entries();
        let mut buf = Vec::new();
        write_entries_csv(&mut buf, &original).unwrap();
        let back = read_entries_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), original.len());
        for (a, b) in back.iter().zip(&original) {
            assert_eq!((a.query, a.probe), (b.query, b.probe));
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "score not bit-exact");
        }
    }

    #[test]
    fn empty_entries_roundtrip() {
        let mut buf = Vec::new();
        write_entries_csv(&mut buf, &[]).unwrap();
        assert_eq!(std::str::from_utf8(&buf).unwrap().trim(), ENTRY_HEADER);
        assert!(read_entries_csv(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn entries_reject_bad_header_and_fields() {
        assert!(matches!(
            read_entries_csv("probe,query,value\n".as_bytes()),
            Err(ExportError::Parse { line: 1, .. })
        ));
        let bad = format!("{ENTRY_HEADER}\n1,2\n");
        assert!(matches!(
            read_entries_csv(bad.as_bytes()),
            Err(ExportError::Parse { line: 2, .. })
        ));
        let bad = format!("{ENTRY_HEADER}\n1,2,3,4\n");
        assert!(read_entries_csv(bad.as_bytes()).is_err());
        let bad = format!("{ENTRY_HEADER}\nx,2,0.5\n");
        let err = read_entries_csv(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid query"));
    }

    #[test]
    fn entries_skip_blank_lines() {
        let text = format!("{ENTRY_HEADER}\n\n1,2,0.5\n\n");
        let got = read_entries_csv(text.as_bytes()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].probe, 2);
    }

    fn lists() -> TopKLists {
        vec![
            vec![ScoredItem { id: 5, score: 2.5 }, ScoredItem { id: 1, score: 2.0 }],
            vec![],
            vec![ScoredItem { id: 0, score: 0.75 }],
        ]
    }

    #[test]
    fn topk_roundtrips_with_empty_lists() {
        let original = lists();
        let mut buf = Vec::new();
        write_topk_csv(&mut buf, &original).unwrap();
        let back = read_topk_csv(&buf[..]).unwrap();
        // trailing empty lists are unrepresentable; here query 2 has rows,
        // so the middle empty list survives
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].len(), 2);
        assert!(back[1].is_empty());
        assert_eq!(back[2][0].id, 0);
        for (la, lb) in back.iter().zip(&original) {
            for (a, b) in la.iter().zip(lb) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn topk_rejects_out_of_order_ranks() {
        let text = format!("{TOPK_HEADER}\n0,2,5,1.0\n");
        let err = read_topk_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected rank 1"));
    }

    #[test]
    fn topk_rejects_wrong_field_count() {
        let text = format!("{TOPK_HEADER}\n0,1,5\n");
        assert!(matches!(read_topk_csv(text.as_bytes()), Err(ExportError::Parse { line: 2, .. })));
    }

    #[test]
    fn io_errors_propagate() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
        }
        assert!(matches!(read_entries_csv(Failing), Err(ExportError::Io(_))));
        let display = ExportError::Io(io::Error::other("disk on fire")).to_string();
        assert!(display.contains("disk on fire"));
    }
}
