//! Property-based tests for the baseline algorithms.

use lemp_baselines::types::{canonical_pairs, topk_equivalent};
use lemp_baselines::{CoverTree, DualTree, Naive, TaIndex};
use lemp_linalg::VectorStore;
use proptest::prelude::*;

fn store_strategy(n: std::ops::Range<usize>, dim: usize) -> impl Strategy<Value = VectorStore> {
    proptest::collection::vec(proptest::collection::vec(-4.0f64..4.0, dim..=dim), n)
        .prop_map(|rows| VectorStore::from_rows(&rows).expect("finite rows"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TA equals Naive on arbitrary stores, thresholds and k.
    #[test]
    fn ta_is_exact(
        probes in store_strategy(1..80, 4),
        queries in store_strategy(1..12, 4),
        theta in -2.0f64..6.0,
        k in 1usize..8,
    ) {
        let idx = TaIndex::build(&probes);
        let (got, counters) = idx.above_theta(&queries, theta);
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        prop_assert_eq!(canonical_pairs(&got), canonical_pairs(&expect));
        prop_assert!(counters.candidates <= (queries.len() * probes.len()) as u64);

        let (got, _) = idx.row_top_k(&queries, k);
        let (expect, _) = Naive.row_top_k(&queries, &probes, k);
        prop_assert!(topk_equivalent(&got, &expect, 1e-9));
    }

    /// The cover tree's structural invariants hold for arbitrary inputs, and
    /// its searches are exact.
    #[test]
    fn cover_tree_invariants_and_exactness(
        probes in store_strategy(1..80, 3),
        queries in store_strategy(1..10, 3),
        theta in -2.0f64..6.0,
    ) {
        let tree = CoverTree::build(&probes, 1.3);
        tree.validate_invariants().unwrap();
        let (got, _) = tree.above_theta(&queries, theta);
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        prop_assert_eq!(canonical_pairs(&got), canonical_pairs(&expect));
        let (got, _) = tree.row_top_k(&queries, 3);
        let (expect, _) = Naive.row_top_k(&queries, &probes, 3);
        prop_assert!(topk_equivalent(&got, &expect, 1e-9));
    }

    /// The dual tree is exact for arbitrary inputs.
    #[test]
    fn dual_tree_exactness(
        probes in store_strategy(1..60, 3),
        queries in store_strategy(1..12, 3),
        theta in -2.0f64..6.0,
    ) {
        let dt = DualTree::build(&queries, &probes, 1.3);
        let (got, _) = dt.above_theta(theta);
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        prop_assert_eq!(canonical_pairs(&got), canonical_pairs(&expect));
        let (got, _) = dt.row_top_k(2);
        let (expect, _) = Naive.row_top_k(&queries, &probes, 2);
        prop_assert!(topk_equivalent(&got, &expect, 1e-9));
    }

    /// TA's candidate count (inner products) never exceeds Naive's and the
    /// result count is consistent with it.
    #[test]
    fn ta_never_does_more_work_than_naive(
        probes in store_strategy(1..60, 5),
        queries in store_strategy(1..8, 5),
        k in 1usize..6,
    ) {
        let idx = TaIndex::build(&probes);
        let (lists, counters) = idx.row_top_k(&queries, k);
        prop_assert!(counters.candidates <= (queries.len() * probes.len()) as u64);
        for l in &lists {
            prop_assert!(l.len() == k.min(probes.len()));
        }
    }
}
