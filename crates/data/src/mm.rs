//! Matrix Market import/export.
//!
//! [Matrix Market] is the lingua franca for exchanging matrices with
//! numerical software (SciPy, MATLAB, Julia); supporting it lets users run
//! LEMP directly on factor matrices produced elsewhere. A stored `m × r`
//! matrix maps to a [`VectorStore`] of `m` vectors of dimensionality `r`
//! (one matrix row per vector — the transpose convention the whole
//! workspace uses for factor matrices).
//!
//! Supported headers: `matrix array real|integer general` (dense,
//! column-major values as the spec requires) and
//! `matrix coordinate real|integer general` (sparse triplets, 1-based;
//! unlisted entries are zero). `pattern`, `complex` and the symmetry
//! variants are rejected with a descriptive error — they have no sensible
//! meaning for factor matrices.
//!
//! [Matrix Market]: https://math.nist.gov/MatrixMarket/formats.html

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use lemp_linalg::VectorStore;

use crate::io::IoError;

/// Writes a store as a dense Matrix Market `array real general` file
/// (values in column-major order, as the format requires).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_mm_array(store: &VectorStore, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "% written by lemp-data ({} vectors of dim {})", store.len(), store.dim())?;
    writeln!(w, "{} {}", store.len(), store.dim())?;
    for col in 0..store.dim() {
        for row in 0..store.len() {
            writeln!(w, "{:?}", store.vector(row)[col])?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a store as a sparse Matrix Market `coordinate real general` file
/// (exact zeros are omitted; indexes are 1-based).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_mm_coordinate(store: &VectorStore, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    let nnz = store.as_flat().iter().filter(|&&x| x != 0.0).count();
    writeln!(w, "{} {} {}", store.len(), store.dim(), nnz)?;
    for row in 0..store.len() {
        for (col, &x) in store.vector(row).iter().enumerate() {
            if x != 0.0 {
                writeln!(w, "{} {} {:?}", row + 1, col + 1, x)?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a Matrix Market file (array or coordinate, auto-detected from the
/// header) into a store of one vector per matrix row.
///
/// # Errors
/// [`IoError::Format`] on unsupported headers (`pattern`, `complex`,
/// symmetry variants), bad sizes, out-of-range or duplicate coordinate
/// entries, non-finite or unparseable values, and wrong value counts;
/// [`IoError::Io`] on filesystem errors.
pub fn read_mm(path: &Path) -> Result<VectorStore, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();

    let header = lines.next().transpose()?.ok_or_else(|| IoError::Format("empty file".into()))?;
    let layout = parse_header(&header)?;

    // Skip comments, find the size line.
    let size_line = loop {
        let line =
            lines.next().transpose()?.ok_or_else(|| IoError::Format("missing size line".into()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };

    match layout {
        Layout::Array => read_array(&size_line, lines),
        Layout::Coordinate => read_coordinate(&size_line, lines),
    }
}

enum Layout {
    Array,
    Coordinate,
}

fn parse_header(header: &str) -> Result<Layout, IoError> {
    let tokens: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    let [banner, object, layout, field, symmetry] = tokens.as_slice() else {
        return Err(IoError::Format(format!("malformed header `{header}`")));
    };
    if banner != "%%matrixmarket" {
        return Err(IoError::Format(format!("not a MatrixMarket file: `{header}`")));
    }
    if object != "matrix" {
        return Err(IoError::Format(format!("unsupported object `{object}` (only matrix)")));
    }
    if field != "real" && field != "integer" {
        return Err(IoError::Format(format!(
            "unsupported field `{field}` (only real/integer; factor matrices are dense reals)"
        )));
    }
    if symmetry != "general" {
        return Err(IoError::Format(format!("unsupported symmetry `{symmetry}` (only general)")));
    }
    match layout.as_str() {
        "array" => Ok(Layout::Array),
        "coordinate" => Ok(Layout::Coordinate),
        other => Err(IoError::Format(format!("unsupported layout `{other}`"))),
    }
}

fn parse_size2(line: &str) -> Result<(usize, usize), IoError> {
    let mut it = line.split_whitespace();
    match (it.next(), it.next(), it.next()) {
        (Some(r), Some(c), None) => Ok((
            r.parse().map_err(|_| IoError::Format(format!("bad row count `{r}`")))?,
            c.parse().map_err(|_| IoError::Format(format!("bad column count `{c}`")))?,
        )),
        _ => Err(IoError::Format(format!("expected `rows cols`, found `{line}`"))),
    }
}

fn read_array(
    size_line: &str,
    lines: impl Iterator<Item = std::io::Result<String>>,
) -> Result<VectorStore, IoError> {
    let (rows, cols) = parse_size2(size_line)?;
    if rows == 0 || cols == 0 {
        return Err(IoError::Format(format!("degenerate shape {rows}×{cols}")));
    }
    let total =
        rows.checked_mul(cols).ok_or_else(|| IoError::Format("rows*cols overflows".into()))?;
    let mut data = vec![0.0f64; total];
    let mut filled = 0usize;
    for line in lines {
        let line = line?;
        for token in line.split_whitespace() {
            if token.starts_with('%') {
                break; // trailing comment on a value line
            }
            if filled == total {
                return Err(IoError::Format(format!("more than {total} values")));
            }
            let x: f64 =
                token.parse().map_err(|_| IoError::Format(format!("bad value `{token}`")))?;
            // Column-major on disk → row-major in the store.
            let col = filled / rows;
            let row = filled % rows;
            data[row * cols + col] = x;
            filled += 1;
        }
    }
    if filled != total {
        return Err(IoError::Format(format!("expected {total} values, found {filled}")));
    }
    VectorStore::from_flat(data, cols).map_err(|e| IoError::Format(format!("invalid store: {e}")))
}

fn read_coordinate(
    size_line: &str,
    lines: impl Iterator<Item = std::io::Result<String>>,
) -> Result<VectorStore, IoError> {
    let mut it = size_line.split_whitespace();
    let (rows, cols, nnz) = match (it.next(), it.next(), it.next(), it.next()) {
        (Some(r), Some(c), Some(z), None) => (
            r.parse::<usize>().map_err(|_| IoError::Format(format!("bad row count `{r}`")))?,
            c.parse::<usize>().map_err(|_| IoError::Format(format!("bad column count `{c}`")))?,
            z.parse::<usize>().map_err(|_| IoError::Format(format!("bad nnz `{z}`")))?,
        ),
        _ => return Err(IoError::Format(format!("expected `rows cols nnz`, found `{size_line}`"))),
    };
    if rows == 0 || cols == 0 {
        return Err(IoError::Format(format!("degenerate shape {rows}×{cols}")));
    }
    let total =
        rows.checked_mul(cols).ok_or_else(|| IoError::Format("rows*cols overflows".into()))?;
    let mut data = vec![0.0f64; total];
    let mut seen = vec![false; total];
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (i, j, v) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(i), Some(j), Some(v), None) => (i, j, v),
            _ => {
                return Err(IoError::Format(format!("expected `row col value`, found `{trimmed}`")))
            }
        };
        let i: usize = i.parse().map_err(|_| IoError::Format(format!("bad row `{i}`")))?;
        let j: usize = j.parse().map_err(|_| IoError::Format(format!("bad col `{j}`")))?;
        let v: f64 = v.parse().map_err(|_| IoError::Format(format!("bad value `{v}`")))?;
        if i == 0 || i > rows || j == 0 || j > cols {
            return Err(IoError::Format(format!(
                "entry ({i}, {j}) outside 1..={rows} × 1..={cols}"
            )));
        }
        let at = (i - 1) * cols + (j - 1);
        if seen[at] {
            return Err(IoError::Format(format!("duplicate entry ({i}, {j})")));
        }
        seen[at] = true;
        data[at] = v;
        read += 1;
    }
    if read != nnz {
        return Err(IoError::Format(format!("header declares {nnz} entries, found {read}")));
    }
    VectorStore::from_flat(data, cols).map_err(|e| IoError::Format(format!("invalid store: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lemp-mm-test-{tag}-{}", std::process::id()));
        p
    }

    /// Deliberately asymmetric so row/column-major mix-ups fail loudly.
    fn sample_store() -> VectorStore {
        VectorStore::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 0.0, 6.0]]).unwrap()
    }

    #[test]
    fn array_roundtrip_is_bit_exact() {
        let path = temp_path("array");
        let store = sample_store();
        write_mm_array(&store, &path).unwrap();
        let back = read_mm(&path).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn array_is_column_major_on_disk() {
        let path = temp_path("colmajor");
        write_mm_array(&sample_store(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let values: Vec<&str> =
            text.lines().filter(|l| !l.starts_with('%') && !l.contains(' ')).collect();
        // column 1 first: 1.0 then 4.0
        assert_eq!(&values[..2], &["1.0", "4.0"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coordinate_roundtrip_preserves_zeros() {
        let path = temp_path("coord");
        let store = sample_store(); // contains one exact zero
        write_mm_coordinate(&store, &path).unwrap();
        let back = read_mm(&path).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reads_hand_written_coordinate_with_comments() {
        let path = temp_path("hand");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             \n\
             2 2 2\n\
             1 2 0.5\n\
             2 1 -3\n",
        )
        .unwrap();
        let s = read_mm(&path).unwrap();
        assert_eq!(s.vector(0), &[0.0, 0.5]);
        assert_eq!(s.vector(1), &[-3.0, 0.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn integer_field_parses_as_floats() {
        let path = temp_path("int");
        std::fs::write(&path, "%%MatrixMarket matrix array integer general\n2 1\n7\n-2\n").unwrap();
        let s = read_mm(&path).unwrap();
        assert_eq!(s.vector(0), &[7.0]);
        assert_eq!(s.vector(1), &[-2.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_is_case_insensitive() {
        let path = temp_path("case");
        std::fs::write(&path, "%%MatrixMarket MATRIX Array Real GENERAL\n1 1\n5\n").unwrap();
        assert_eq!(read_mm(&path).unwrap().vector(0), &[5.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unsupported_headers() {
        let path = temp_path("unsupported");
        for (header, needle) in [
            ("%%MatrixMarket matrix coordinate pattern general", "pattern"),
            ("%%MatrixMarket matrix coordinate complex general", "complex"),
            ("%%MatrixMarket matrix array real symmetric", "symmetric"),
            ("%%MatrixMarket vector array real general", "vector"),
            ("%%NotMatrixMarket matrix array real general", "not a MatrixMarket"),
            ("%%MatrixMarket matrix array real", "malformed"),
        ] {
            std::fs::write(&path, format!("{header}\n1 1\n1\n")).unwrap();
            let err = read_mm(&path).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "header `{header}`: error `{err}` misses `{needle}`"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_value_count_mismatches() {
        let path = temp_path("counts");
        std::fs::write(&path, "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n").unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("expected 4 values"));
        std::fs::write(&path, "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n5\n")
            .unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("more than 4"));
        std::fs::write(&path, "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n")
            .unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("declares 3"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_and_duplicate_entries() {
        let path = temp_path("range");
        std::fs::write(&path, "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n")
            .unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("outside"));
        std::fs::write(&path, "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n")
            .unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("outside"));
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n1 1 2.0\n",
        )
        .unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("duplicate"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_finite_values() {
        let path = temp_path("nan");
        std::fs::write(&path, "%%MatrixMarket matrix array real general\n1 1\nNaN\n").unwrap();
        assert!(matches!(read_mm(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_and_empty_file() {
        assert!(matches!(read_mm(&temp_path("missing")), Err(IoError::Io(_))));
        let path = temp_path("empty");
        std::fs::write(&path, "").unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("empty file"));
        std::fs::write(&path, "%%MatrixMarket matrix array real general\n").unwrap();
        assert!(read_mm(&path).unwrap_err().to_string().contains("missing size"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn large_roundtrip_via_generator() {
        use crate::synthetic::GeneratorConfig;
        let store = GeneratorConfig::gaussian(40, 7, 1.0).generate(5);
        let path = temp_path("gen");
        write_mm_array(&store, &path).unwrap();
        assert_eq!(read_mm(&path).unwrap(), store);
        write_mm_coordinate(&store, &path).unwrap();
        assert_eq!(read_mm(&path).unwrap(), store);
        std::fs::remove_file(&path).ok();
    }
}
