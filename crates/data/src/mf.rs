//! Stochastic-gradient-descent matrix factorization.
//!
//! The paper's inputs are factor matrices produced by latent-factor models
//! (it factorizes Netflix with DSGD++ under L2 regularization, λ = 50). This
//! module is that upstream substrate, built from scratch: a plain
//! rating-matrix factorizer `R ≈ UᵀV` trained by SGD with L2 regularization,
//! plus a synthetic rating generator with a planted low-rank structure so the
//! trainer has something realistic to learn. Examples and tests use it to
//! produce "honestly earned" factor matrices and to validate that the
//! calibrated generators in [`crate::synthetic`] are representative of real
//! MF output.

use lemp_linalg::{kernels, VectorStore};
use rand::rngs::StdRng;
use rand::Rng;

use crate::rng::{seeded, standard_normal};

/// One observed rating: user `u` gave item `i` the value `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index in `[0, users)`.
    pub u: u32,
    /// Item index in `[0, items)`.
    pub i: u32,
    /// Observed value.
    pub value: f64,
}

/// Hyper-parameters of the SGD trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfConfig {
    /// Rank `r` of the factorization.
    pub rank: usize,
    /// Number of SGD passes over the ratings.
    pub epochs: usize,
    /// Initial learning rate (decayed by `lr_decay` per epoch).
    pub learning_rate: f64,
    /// Multiplicative per-epoch learning-rate decay.
    pub lr_decay: f64,
    /// L2 regularization strength applied to both factors.
    pub lambda: f64,
    /// Standard deviation of the random factor initialization.
    pub init_std: f64,
}

impl Default for MfConfig {
    fn default() -> Self {
        Self {
            rank: 10,
            epochs: 20,
            learning_rate: 0.02,
            lr_decay: 0.95,
            lambda: 0.05,
            init_std: 0.1,
        }
    }
}

/// The trained model: user factors (`m × r`) and item factors (`n × r`).
#[derive(Debug, Clone)]
pub struct MfModel {
    /// One factor vector per user.
    pub users: VectorStore,
    /// One factor vector per item.
    pub items: VectorStore,
}

impl MfModel {
    /// Predicted value for `(u, i)`.
    pub fn predict(&self, u: usize, i: usize) -> f64 {
        self.users.dot_between(u, &self.items, i)
    }

    /// Root-mean-square error over a set of ratings.
    pub fn rmse(&self, ratings: &[Rating]) -> f64 {
        if ratings.is_empty() {
            return 0.0;
        }
        let se: f64 = ratings
            .iter()
            .map(|r| {
                let e = r.value - self.predict(r.u as usize, r.i as usize);
                e * e
            })
            .sum();
        (se / ratings.len() as f64).sqrt()
    }
}

/// Trains `R ≈ UᵀV` by SGD.
///
/// Standard update per observed `(u, i, v)` with error `e = v − uᵤᵀvᵢ`:
/// `uᵤ ← uᵤ + η(e·vᵢ − λ·uᵤ)` and symmetrically for `vᵢ`. Ratings are
/// visited in a reshuffled order each epoch (Fisher–Yates on an index
/// permutation).
pub fn train(ratings: &[Rating], users: usize, items: usize, cfg: &MfConfig, seed: u64) -> MfModel {
    assert!(cfg.rank > 0, "rank must be positive");
    let mut rng = seeded(seed);
    let mut u = random_store(users, cfg.rank, cfg.init_std, &mut rng);
    let mut v = random_store(items, cfg.rank, cfg.init_std, &mut rng);

    let mut order: Vec<usize> = (0..ratings.len()).collect();
    let mut lr = cfg.learning_rate;
    let mut grad_u = vec![0.0; cfg.rank];
    for _ in 0..cfg.epochs {
        shuffle(&mut order, &mut rng);
        for &idx in &order {
            let r = ratings[idx];
            let (ui, vi) = (r.u as usize, r.i as usize);
            let e = r.value - u.dot_between(ui, &v, vi);
            // uᵤ update needs the pre-update value for vᵢ's gradient; stage
            // the gradient for u first.
            {
                let uv = u.vector(ui);
                let vv = v.vector(vi);
                for f in 0..cfg.rank {
                    grad_u[f] = e * vv[f] - cfg.lambda * uv[f];
                }
            }
            {
                let uv = u.vector(ui).to_vec();
                let vv = v.vector_mut(vi);
                for f in 0..cfg.rank {
                    vv[f] += lr * (e * uv[f] - cfg.lambda * vv[f]);
                }
            }
            kernels::axpy(lr, &grad_u, u.vector_mut(ui));
        }
        lr *= cfg.lr_decay;
    }
    MfModel { users: u, items: v }
}

/// Generates `count` synthetic ratings from a planted rank-`rank` model plus
/// gaussian noise; returns `(ratings, planted_model)`.
///
/// The planted model mimics recommender data: per-user and per-item gaussian
/// factors plus a global bias, values roughly in the familiar 1–5 star range.
pub fn synthetic_ratings(
    users: usize,
    items: usize,
    count: usize,
    rank: usize,
    noise_std: f64,
    seed: u64,
) -> (Vec<Rating>, MfModel) {
    assert!(users > 0 && items > 0 && rank > 0);
    let mut rng = seeded(seed);
    // Coordinate std s with s²·√rank = 1 gives planted predictions of unit
    // variance — the familiar ±1 star spread around the mean rating.
    let scale = (1.0 / (rank as f64).sqrt()).sqrt();
    let u = random_store(users, rank, scale, &mut rng);
    let v = random_store(items, rank, scale, &mut rng);
    let model = MfModel { users: u, items: v };
    let mut ratings = Vec::with_capacity(count);
    for _ in 0..count {
        let uu = rng.random_range(0..users);
        let ii = rng.random_range(0..items);
        let value = 3.0 + model.predict(uu, ii) + noise_std * standard_normal(&mut rng);
        ratings.push(Rating { u: uu as u32, i: ii as u32, value });
    }
    (ratings, model)
}

/// Like [`synthetic_ratings`], but items are sampled with a power-law
/// popularity (`idx = ⌊items·u^alpha⌋`, `alpha > 1` concentrates mass on
/// low indexes). Real rating data is popularity-skewed — the Netflix factors
/// of the paper owe their length CoV of 0.72 to it: frequently rated items
/// receive more gradient signal and grow longer factor vectors, which is
/// precisely the skew LEMP's bucket pruning feeds on.
pub fn synthetic_ratings_skewed(
    users: usize,
    items: usize,
    count: usize,
    rank: usize,
    noise_std: f64,
    alpha: f64,
    seed: u64,
) -> (Vec<Rating>, MfModel) {
    assert!(users > 0 && items > 0 && rank > 0);
    assert!(alpha >= 1.0, "alpha < 1 would skew toward high indexes");
    let mut rng = seeded(seed);
    let scale = (1.0 / (rank as f64).sqrt()).sqrt();
    let u = random_store(users, rank, scale, &mut rng);
    let v = random_store(items, rank, scale, &mut rng);
    let model = MfModel { users: u, items: v };
    let mut ratings = Vec::with_capacity(count);
    for _ in 0..count {
        let uu = rng.random_range(0..users);
        let pick: f64 = rng.random::<f64>().powf(alpha);
        let ii = ((pick * items as f64) as usize).min(items - 1);
        let value = 3.0 + model.predict(uu, ii) + noise_std * standard_normal(&mut rng);
        ratings.push(Rating { u: uu as u32, i: ii as u32, value });
    }
    (ratings, model)
}

/// Like [`synthetic_ratings_skewed`], but the planted factors carry a
/// *cluster* structure: `clusters` random unit centers (taste groups /
/// genres); every user and item factor is its cluster's center plus
/// `spread`-scaled gaussian noise. Same-cluster pairs then have high planted
/// cosine (≈ `1/(1+spread²)`), cross-cluster pairs near zero — the
/// directional geometry real rating data exhibits and the reason trained
/// factor matrices respond so well to cosine-based pruning.
/// `affinity` is the probability that a user rates an item from their own
/// taste cluster (selection bias: people rate what they like). Without it,
/// same-cluster pairs are too rare for the trainer to learn the alignment
/// that makes top predictions stand out.
#[allow(clippy::too_many_arguments)]
pub fn synthetic_ratings_clustered(
    users: usize,
    items: usize,
    count: usize,
    rank: usize,
    clusters: usize,
    spread: f64,
    affinity: f64,
    noise_std: f64,
    alpha: f64,
    seed: u64,
) -> (Vec<Rating>, MfModel) {
    assert!(users > 0 && items > 0 && rank > 0 && clusters > 0);
    assert!(alpha >= 1.0, "alpha < 1 would skew toward high indexes");
    let mut rng = seeded(seed);
    let mut centers = random_store(clusters, rank, 1.0, &mut rng);
    for c in 0..clusters {
        kernels::normalize(centers.vector_mut(c));
    }
    let noise_scale = spread / (rank as f64).sqrt();
    let planted = |cluster: usize, rng: &mut StdRng| -> Vec<f64> {
        centers.vector(cluster).iter().map(|&c| c + noise_scale * standard_normal(rng)).collect()
    };
    let u_rows: Vec<Vec<f64>> = (0..users).map(|i| planted(i % clusters, &mut rng)).collect();
    let v_rows: Vec<Vec<f64>> = (0..items).map(|i| planted(i % clusters, &mut rng)).collect();
    let model = MfModel {
        users: VectorStore::from_rows(&u_rows).expect("finite planted users"),
        items: VectorStore::from_rows(&v_rows).expect("finite planted items"),
    };
    let mut ratings = Vec::with_capacity(count);
    for _ in 0..count {
        let uu = rng.random_range(0..users);
        let pick: f64 = rng.random::<f64>().powf(alpha);
        let ii = if rng.random::<f64>() < affinity {
            // An item from the user's own cluster (indexes ≡ mod clusters),
            // popularity-skewed within the cluster.
            let c = uu % clusters;
            let in_cluster = (items - 1 - c) / clusters + 1;
            let j = ((pick * in_cluster as f64) as usize).min(in_cluster - 1);
            j * clusters + c
        } else {
            ((pick * items as f64) as usize).min(items - 1)
        };
        let value = 3.0 + model.predict(uu, ii) + noise_std * standard_normal(&mut rng);
        ratings.push(Rating { u: uu as u32, i: ii as u32, value });
    }
    (ratings, model)
}

fn random_store(count: usize, dim: usize, std: f64, rng: &mut StdRng) -> VectorStore {
    let data: Vec<f64> = (0..count * dim).map(|_| std * standard_normal(rng)).collect();
    VectorStore::from_flat(data, dim).expect("finite random data")
}

fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_rmse_vs_init() {
        let (ratings, _) = synthetic_ratings(60, 40, 3000, 4, 0.05, 1);
        let cfg = MfConfig { rank: 4, epochs: 30, ..MfConfig::default() };
        let untrained = train(&ratings, 60, 40, &MfConfig { epochs: 0, ..cfg }, 2);
        let trained = train(&ratings, 60, 40, &cfg, 2);
        let before = untrained.rmse(&ratings);
        let after = trained.rmse(&ratings);
        assert!(after < before * 0.25, "training did not converge: before {before}, after {after}");
        assert!(after < 0.6, "absolute fit too poor: {after}");
    }

    #[test]
    fn shapes_match_request() {
        let (ratings, _) = synthetic_ratings(10, 7, 100, 3, 0.1, 3);
        let m = train(&ratings, 10, 7, &MfConfig { rank: 5, epochs: 1, ..Default::default() }, 4);
        assert_eq!(m.users.len(), 10);
        assert_eq!(m.items.len(), 7);
        assert_eq!(m.users.dim(), 5);
        assert_eq!(m.items.dim(), 5);
    }

    #[test]
    fn training_is_deterministic() {
        let (ratings, _) = synthetic_ratings(20, 15, 400, 3, 0.1, 5);
        let cfg = MfConfig { rank: 3, epochs: 5, ..Default::default() };
        let a = train(&ratings, 20, 15, &cfg, 9);
        let b = train(&ratings, 20, 15, &cfg, 9);
        assert_eq!(a.users, b.users);
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn synthetic_ratings_are_in_plausible_range() {
        let (ratings, _) = synthetic_ratings(30, 30, 2000, 5, 0.2, 7);
        assert_eq!(ratings.len(), 2000);
        for r in &ratings {
            assert!((r.u as usize) < 30);
            assert!((r.i as usize) < 30);
            assert!(r.value > -5.0 && r.value < 11.0, "value {}", r.value);
        }
        let mean: f64 = ratings.iter().map(|r| r.value).sum::<f64>() / 2000.0;
        assert!((mean - 3.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn skewed_ratings_concentrate_on_popular_items() {
        let (ratings, _) = synthetic_ratings_skewed(50, 1000, 5000, 4, 0.1, 3.0, 13);
        let low = ratings.iter().filter(|r| (r.i as usize) < 100).count();
        // alpha = 3 puts u^3 < 0.1 ⇔ u < 0.464 of the mass on the first 10%.
        assert!(
            low as f64 > 0.35 * ratings.len() as f64,
            "only {low} of {} ratings hit the popular head",
            ratings.len()
        );
        assert!(ratings.iter().all(|r| (r.i as usize) < 1000));
    }

    #[test]
    fn clustered_ratings_have_high_same_cluster_affinity() {
        let clusters = 5;
        let (_, model) =
            synthetic_ratings_clustered(50, 50, 10, 8, clusters, 0.3, 0.8, 0.1, 1.5, 17);
        // Same-cluster pairs (indexes ≡ mod clusters) score well above
        // cross-cluster pairs on average.
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut ns = 0;
        let mut nc = 0;
        for u in 0..50 {
            for i in 0..50 {
                let v = model.predict(u, i);
                if u % clusters == i % clusters {
                    same += v;
                    ns += 1;
                } else {
                    cross += v;
                    nc += 1;
                }
            }
        }
        assert!(same / ns as f64 > cross / nc as f64 + 0.5);
    }

    #[test]
    fn rmse_of_empty_ratings_is_zero() {
        let (_, model) = synthetic_ratings(5, 5, 10, 2, 0.1, 8);
        assert_eq!(model.rmse(&[]), 0.0);
    }

    #[test]
    fn regularization_shrinks_factors() {
        let (ratings, _) = synthetic_ratings(30, 20, 1500, 3, 0.1, 11);
        let weak = train(
            &ratings,
            30,
            20,
            &MfConfig { rank: 3, epochs: 15, lambda: 0.0, ..Default::default() },
            12,
        );
        let strong = train(
            &ratings,
            30,
            20,
            &MfConfig { rank: 3, epochs: 15, lambda: 2.0, ..Default::default() },
            12,
        );
        let norm_of = |s: &VectorStore| s.lengths().iter().sum::<f64>();
        assert!(norm_of(&strong.users) < norm_of(&weak.users));
    }
}
