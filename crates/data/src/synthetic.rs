//! Calibrated synthetic factor-matrix generators.
//!
//! A generated store is `length × direction`: directions are drawn from a
//! value model (dense gaussian for SVD-like factors, masked non-negative for
//! NMF-like factors) and normalized; lengths are log-normal with unit mean
//! and a target coefficient of variation. This gives independent, exact
//! control over the two statistics Table 1 of the paper uses to characterize
//! its datasets — length skew (CoV) and sparsity — which are precisely the
//! properties LEMP's pruning exploits.

use lemp_linalg::{kernels, VectorStore};
use rand::rngs::StdRng;
use rand::Rng;

use crate::rng::{log_normal, log_normal_params_for_cov, seeded, standard_normal};

/// How direction-vector coordinates are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueModel {
    /// Dense i.i.d. standard-normal coordinates (SVD/plain-MF-like factors;
    /// 100 % non-zero as for IE-SVD, Netflix, KDD in Table 1).
    Gaussian,
    /// Non-negative sparse coordinates: a Bernoulli(`density`) mask over
    /// |standard normal| values (NMF-like factors; Table 1 reports 36.2 %
    /// non-zeros for IE-NMF). At least one coordinate per vector is forced
    /// non-zero so no zero vectors are produced.
    NonNegativeSparse {
        /// Probability that a coordinate is non-zero.
        density: f64,
    },
}

/// Full description of a synthetic factor matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of vectors (columns of the paper's factor matrix).
    pub count: usize,
    /// Dimensionality `r` (rank of the factorization; 50 in all paper data).
    pub dim: usize,
    /// Target coefficient of variation of the vector lengths.
    pub length_cov: f64,
    /// Mean vector length (absolute scale; cancels out of all relative
    /// results but is kept configurable for realism).
    pub mean_length: f64,
    /// Direction value model.
    pub values: ValueModel,
}

impl GeneratorConfig {
    /// Dense gaussian config with the given shape and length skew.
    pub fn gaussian(count: usize, dim: usize, length_cov: f64) -> Self {
        Self { count, dim, length_cov, mean_length: 1.0, values: ValueModel::Gaussian }
    }

    /// Sparse non-negative config with the given shape, skew and density.
    pub fn sparse(count: usize, dim: usize, length_cov: f64, density: f64) -> Self {
        Self {
            count,
            dim,
            length_cov,
            mean_length: 1.0,
            values: ValueModel::NonNegativeSparse { density },
        }
    }

    /// Generates the store with an explicit RNG.
    ///
    /// # Panics
    /// If `dim == 0` (a factor matrix always has positive rank).
    pub fn generate_with(&self, rng: &mut StdRng) -> VectorStore {
        assert!(self.dim > 0, "factor dimensionality must be positive");
        let (mu, sigma) = log_normal_params_for_cov(self.length_cov);
        let mut data = Vec::with_capacity(self.count * self.dim);
        let mut v = vec![0.0; self.dim];
        for _ in 0..self.count {
            self.fill_direction(rng, &mut v);
            kernels::normalize(&mut v);
            let len = self.mean_length * log_normal(rng, mu, sigma);
            data.extend(v.iter().map(|x| x * len));
        }
        VectorStore::from_flat(data, self.dim).expect("generator produces finite, well-shaped data")
    }

    /// Generates the store from a seed.
    pub fn generate(&self, seed: u64) -> VectorStore {
        self.generate_with(&mut seeded(seed))
    }

    fn fill_direction(&self, rng: &mut StdRng, v: &mut [f64]) {
        match self.values {
            ValueModel::Gaussian => {
                for x in v.iter_mut() {
                    *x = standard_normal(rng);
                }
                // A zero gaussian vector has probability 0 but guard anyway.
                if kernels::norm_sq(v) == 0.0 {
                    v[0] = 1.0;
                }
            }
            ValueModel::NonNegativeSparse { density } => {
                let mut any = false;
                for x in v.iter_mut() {
                    if rng.random::<f64>() < density {
                        *x = standard_normal(rng).abs();
                        any = true;
                    } else {
                        *x = 0.0;
                    }
                }
                if !any {
                    let f = rng.random_range(0..v.len());
                    v[f] = standard_normal(rng).abs().max(f64::MIN_POSITIVE.sqrt());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_linalg::stats;

    #[test]
    fn gaussian_store_matches_shape_and_cov() {
        let cfg = GeneratorConfig::gaussian(5000, 50, 1.5);
        let s = cfg.generate(7);
        assert_eq!(s.len(), 5000);
        assert_eq!(s.dim(), 50);
        let lengths = s.lengths();
        let got = stats::cov(&lengths);
        assert!((got - 1.5).abs() < 0.2, "CoV {got}");
        assert!((stats::mean(&lengths) - 1.0).abs() < 0.1);
        // dense: essentially all entries non-zero
        assert!(stats::nonzero_fraction(s.as_flat()) > 0.999);
    }

    #[test]
    fn sparse_store_matches_density_and_nonnegativity() {
        let cfg = GeneratorConfig::sparse(4000, 50, 5.0, 0.362);
        let s = cfg.generate(8);
        let nz = stats::nonzero_fraction(s.as_flat());
        assert!((nz - 0.362).abs() < 0.02, "density {nz}");
        assert!(s.as_flat().iter().all(|x| *x >= 0.0));
        // no zero vectors
        assert!(s.lengths().iter().all(|l| *l > 0.0));
    }

    #[test]
    fn sparse_never_emits_zero_vectors_even_at_tiny_density() {
        let cfg = GeneratorConfig::sparse(500, 10, 0.5, 0.01);
        let s = cfg.generate(9);
        assert!(s.lengths().iter().all(|l| *l > 0.0));
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = GeneratorConfig::gaussian(100, 10, 0.4);
        assert_eq!(cfg.generate(5), cfg.generate(5));
        assert_ne!(cfg.generate(5), cfg.generate(6));
    }

    #[test]
    fn mean_length_scales_lengths() {
        let mut cfg = GeneratorConfig::gaussian(2000, 20, 0.4);
        cfg.mean_length = 10.0;
        let lengths = cfg.generate(11).lengths();
        assert!((stats::mean(&lengths) - 10.0).abs() < 1.0);
        // CoV unchanged by scaling
        assert!((stats::cov(&lengths) - 0.4).abs() < 0.1);
    }

    #[test]
    fn zero_cov_gives_equal_lengths() {
        let cfg = GeneratorConfig::gaussian(50, 8, 0.0);
        let lengths = cfg.generate(13).lengths();
        for l in lengths {
            assert!((l - 1.0).abs() < 1e-9);
        }
    }
}
