//! θ calibration for "recall level" workloads.
//!
//! The paper's Above-θ experiments select θ "such that we retrieve the
//! top-10³, -10⁴, -10⁵, -10⁶ and -10⁷ entries in the whole product matrix"
//! (Sec. 6.1). This module computes such a θ for a target result size —
//! exactly (full product, O(mnr), fine at test scale) or by uniform pair
//! sampling (quantile estimation, used by the bench harness at larger scale).

use lemp_linalg::{kernels, stats, TopK, VectorStore};
use rand::Rng;

use crate::rng::seeded;

/// θ such that exactly `target` entries of `QᵀP` are ≥ θ (the value of the
/// `target`-th largest entry). Computes the full product; intended for small
/// inputs.
///
/// Returns `None` when `target` is 0 or exceeds `m·n`.
pub fn exact_theta(queries: &VectorStore, probes: &VectorStore, target: usize) -> Option<f64> {
    let total = queries.len() * probes.len();
    if target == 0 || target > total {
        return None;
    }
    let mut top = TopK::new(target);
    for q in queries.iter() {
        for (j, p) in probes.iter().enumerate() {
            top.push(j, kernels::dot(q, p));
        }
    }
    let items = top.drain_sorted();
    items.last().map(|x| x.score)
}

/// θ estimate for a target result size from `samples` uniformly random
/// `(query, probe)` pairs: the empirical `1 − target/(mn)` quantile of the
/// sampled inner products.
///
/// Returns `None` when `target` is 0 or exceeds `m·n`, or either side is
/// empty.
pub fn sampled_theta(
    queries: &VectorStore,
    probes: &VectorStore,
    target: usize,
    samples: usize,
    seed: u64,
) -> Option<f64> {
    if queries.is_empty() || probes.is_empty() {
        return None;
    }
    let total = queries.len() as f64 * probes.len() as f64;
    if target == 0 || target as f64 > total {
        return None;
    }
    let mut rng = seeded(seed);
    let mut dots: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let i = rng.random_range(0..queries.len());
        let j = rng.random_range(0..probes.len());
        dots.push(queries.dot_between(i, probes, j));
    }
    dots.sort_by(|a, b| a.partial_cmp(b).expect("finite dot products"));
    let q = 1.0 - target as f64 / total;
    Some(stats::quantile_of_sorted(&dots, q))
}

/// Number of entries of `QᵀP` that are ≥ θ (exact, full product).
pub fn count_above(queries: &VectorStore, probes: &VectorStore, theta: f64) -> usize {
    let mut count = 0;
    for q in queries.iter() {
        for p in probes.iter() {
            if kernels::dot(q, p) >= theta {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::GeneratorConfig;

    fn small_pair() -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(80, 10, 0.5).generate(1);
        let p = GeneratorConfig::gaussian(60, 10, 0.5).generate(2);
        (q, p)
    }

    #[test]
    fn exact_theta_hits_target_exactly() {
        let (q, p) = small_pair();
        for target in [1usize, 10, 100, 1000] {
            let theta = exact_theta(&q, &p, target).unwrap();
            let count = count_above(&q, &p, theta);
            // ties can make the count exceed the target, never undershoot
            assert!(count >= target, "target {target}, count {count}");
            assert!(count <= target + 5, "excess ties: target {target}, count {count}");
        }
    }

    #[test]
    fn exact_theta_rejects_degenerate_targets() {
        let (q, p) = small_pair();
        assert!(exact_theta(&q, &p, 0).is_none());
        assert!(exact_theta(&q, &p, q.len() * p.len() + 1).is_none());
        // full product is a valid target
        assert!(exact_theta(&q, &p, q.len() * p.len()).is_some());
    }

    #[test]
    fn sampled_theta_approximates_exact() {
        let (q, p) = small_pair();
        let target = 200;
        let exact = exact_theta(&q, &p, target).unwrap();
        let sampled = sampled_theta(&q, &p, target, 40_000, 3).unwrap();
        let exact_count = count_above(&q, &p, exact) as f64;
        let sampled_count = count_above(&q, &p, sampled) as f64;
        // within 2x of the target result size is plenty for workload shaping
        assert!(
            sampled_count > exact_count * 0.4 && sampled_count < exact_count * 2.5,
            "exact {exact_count}, sampled {sampled_count}"
        );
    }

    #[test]
    fn sampled_theta_handles_empty_and_degenerate() {
        let (q, p) = small_pair();
        let empty = VectorStore::empty(10).unwrap();
        assert!(sampled_theta(&empty, &p, 5, 100, 1).is_none());
        assert!(sampled_theta(&q, &empty, 5, 100, 1).is_none());
        assert!(sampled_theta(&q, &p, 0, 100, 1).is_none());
    }

    #[test]
    fn count_above_monotone_in_theta() {
        let (q, p) = small_pair();
        let lo = count_above(&q, &p, 0.5);
        let hi = count_above(&q, &p, 1.5);
        assert!(lo >= hi);
    }
}
