//! Matrix IO: a small self-describing binary format and CSV import/export.
//!
//! The binary format is `LEMPVS01` magic, little-endian `u64` count and dim,
//! then `count·dim` little-endian `f64`s. CSV is one vector per line. Both
//! writers/readers are buffered (many small `read`/`write` calls would
//! otherwise dominate, per the performance guide).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use lemp_linalg::VectorStore;

const MAGIC: &[u8; 8] = b"LEMPVS01";

/// Errors raised by matrix IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file is not in the expected format.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a store in the binary format.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_binary(store: &VectorStore, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    w.write_all(&(store.dim() as u64).to_le_bytes())?;
    for x in store.as_flat() {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a store from the binary format.
///
/// # Errors
/// [`IoError::Format`] on bad magic, truncated data, or non-finite values;
/// [`IoError::Io`] on filesystem errors.
pub fn read_binary(path: &Path) -> Result<VectorStore, IoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|_| IoError::Format("file too short for magic".into()))?;
    if &magic != MAGIC {
        return Err(IoError::Format(format!("bad magic {magic:?}")));
    }
    let count = read_u64(&mut r)? as usize;
    let dim = read_u64(&mut r)? as usize;
    let total =
        count.checked_mul(dim).ok_or_else(|| IoError::Format("count*dim overflows".into()))?;
    let mut data = Vec::with_capacity(total);
    let mut buf = [0u8; 8];
    for _ in 0..total {
        r.read_exact(&mut buf).map_err(|_| IoError::Format("truncated data section".into()))?;
        data.push(f64::from_le_bytes(buf));
    }
    // Reject trailing garbage: the format is exactly sized.
    if r.read(&mut buf)? != 0 {
        return Err(IoError::Format("trailing bytes after data section".into()));
    }
    VectorStore::from_flat(data, dim.max(1))
        .map_err(|e| IoError::Format(format!("invalid store: {e}")))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|_| IoError::Format("truncated header".into()))?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a store as CSV, one vector per line.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv(store: &VectorStore, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for v in store.iter() {
        let mut first = true;
        for x in v {
            if first {
                first = false;
            } else {
                w.write_all(b",")?;
            }
            write!(w, "{x}")?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSV file of equal-length comma-separated float rows.
///
/// Empty lines are skipped. The dimensionality is inferred from the first
/// row.
///
/// # Errors
/// [`IoError::Format`] on unparsable values, ragged rows, or an empty file.
pub fn read_csv(path: &Path) -> Result<VectorStore, IoError> {
    let r = BufReader::new(File::open(path)?);
    let mut data: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let start = data.len();
        for field in line.split(',') {
            let x: f64 = field.trim().parse().map_err(|_| {
                IoError::Format(format!("line {}: bad float {field:?}", lineno + 1))
            })?;
            data.push(x);
        }
        let row_len = data.len() - start;
        match dim {
            None => dim = Some(row_len),
            Some(d) if d != row_len => {
                return Err(IoError::Format(format!(
                    "line {}: expected {d} fields, found {row_len}",
                    lineno + 1
                )));
            }
            _ => {}
        }
    }
    let dim = dim.ok_or_else(|| IoError::Format("empty csv".into()))?;
    VectorStore::from_flat(data, dim).map_err(|e| IoError::Format(format!("invalid store: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lemp-io-test-{tag}-{}", std::process::id()));
        p
    }

    fn sample_store() -> VectorStore {
        VectorStore::from_rows(&[
            vec![1.0, -2.5, 3.25],
            vec![0.0, 1e-10, -7.0],
            vec![100.5, 0.0, 0.125],
        ])
        .unwrap()
    }

    #[test]
    fn binary_roundtrip() {
        let path = temp_path("bin-roundtrip");
        let store = sample_store();
        write_binary(&store, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = temp_path("bin-magic");
        std::fs::write(&path, b"NOTLEMP!rest").unwrap();
        assert!(matches!(read_binary(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_truncation_and_trailing() {
        let path = temp_path("bin-trunc");
        let store = sample_store();
        write_binary(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.pop();
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_binary(&path), Err(IoError::Format(_))));

        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_binary(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let path = temp_path("csv-roundtrip");
        let store = sample_store();
        write_csv(&store, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(store.len(), back.len());
        assert_eq!(store.dim(), back.dim());
        for (a, b) in store.as_flat().iter().zip(back.as_flat()) {
            assert!((a - b).abs() < 1e-12);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows_and_bad_floats() {
        let path = temp_path("csv-ragged");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        assert!(matches!(read_csv(&path), Err(IoError::Format(_))));
        std::fs::write(&path, "1,banana\n").unwrap();
        assert!(matches!(read_csv(&path), Err(IoError::Format(_))));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(read_csv(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_skips_blank_lines() {
        let path = temp_path("csv-blank");
        std::fs::write(&path, "1,2\n\n3,4\n\n").unwrap();
        let s = read_csv(&path).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.vector(1), &[3.0, 4.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("does-not-exist");
        assert!(matches!(read_binary(&path), Err(IoError::Io(_))));
        assert!(matches!(read_csv(&path), Err(IoError::Io(_))));
    }
}
