//! Seeded random sources and distributions.
//!
//! Everything in the workspace that needs randomness takes an explicit
//! `StdRng` (or seed) so experiments are exactly reproducible. The standard
//! normal is a local Box–Muller implementation instead of a `rand_distr`
//! dependency (see DESIGN.md §3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
///
/// Uses the polar-free form `√(−2 ln u₁)·cos(2π u₂)`; `u₁` is drawn from the
/// half-open `(0, 1]` by flipping `1 − u` so the logarithm is finite.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal sample with the *underlying* normal's parameters `mu`,
/// `sigma` (i.e. `exp(N(mu, sigma²))`).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Parameters `(mu, sigma)` of a log-normal with unit mean and the requested
/// coefficient of variation.
///
/// For `X = exp(N(mu, σ²))`: `CoV(X) = √(exp(σ²) − 1)`, independent of `mu`,
/// so `σ = √(ln(1 + CoV²))`; `mu = −σ²/2` normalizes the mean to 1. This is
/// how the generators dial in the per-dataset length skew of Table 1.
pub fn log_normal_params_for_cov(target_cov: f64) -> (f64, f64) {
    assert!(target_cov >= 0.0, "CoV must be non-negative");
    let sigma_sq = (1.0 + target_cov * target_cov).ln();
    let sigma = sigma_sq.sqrt();
    (-sigma_sq / 2.0, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_linalg::stats;

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(1);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(stats::mean(&xs).abs() < 0.02, "mean {}", stats::mean(&xs));
        assert!((stats::std_dev(&xs) - 1.0).abs() < 0.02, "sd {}", stats::std_dev(&xs));
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_normal_hits_target_cov() {
        for target in [0.1, 0.4, 1.5, 4.4] {
            let (mu, sigma) = log_normal_params_for_cov(target);
            let mut rng = seeded(2);
            let xs: Vec<f64> = (0..400_000).map(|_| log_normal(&mut rng, mu, sigma)).collect();
            // The log-domain moments pin the distribution exactly and their
            // estimators converge fast regardless of tail weight: ln X must
            // be N(mu, sigma²) by construction.
            let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
            assert!(
                (stats::mean(&logs) - mu).abs() < 0.01 * (1.0 + sigma),
                "target CoV {target}: log-mean {} vs mu {mu}",
                stats::mean(&logs)
            );
            assert!(
                (stats::std_dev(&logs) - sigma).abs() < 0.01 * (1.0 + sigma),
                "target CoV {target}: log-sd {} vs sigma {sigma}",
                stats::std_dev(&logs)
            );
            // The direct sample CoV is only assertable where its estimator
            // converges: the variance-of-variance of exp(N(0, σ²)) grows
            // like exp(4σ²), so at CoV 4.4 (σ ≈ 1.74) even 400k samples
            // leave tens of percent of estimator noise.
            if target <= 1.5 {
                let got = stats::cov(&xs);
                let tol = 0.02 + 0.08 * target;
                assert!((got - target).abs() < tol, "target CoV {target}, got {got} (tol {tol})");
            }
            // unit mean by construction (the mean estimator's relative
            // error is CoV/√n ≈ 0.7% even at the heaviest tail)
            assert!((stats::mean(&xs) - 1.0).abs() < 0.05 + 0.02 * target);
        }
    }

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| standard_normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| standard_normal(&mut r)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut r = seeded(43);
            (0..10).map(|_| standard_normal(&mut r)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn cov_zero_gives_constant_distribution() {
        let (mu, sigma) = log_normal_params_for_cov(0.0);
        assert_eq!(sigma, 0.0);
        let mut rng = seeded(3);
        let x = log_normal(&mut rng, mu, sigma);
        assert!((x - 1.0).abs() < 1e-12);
    }
}
