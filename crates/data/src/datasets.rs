//! Named dataset configurations reproducing Table 1 of the paper.
//!
//! Table 1 characterizes each evaluation dataset by its shape (`m` query
//! vectors, `n` probe vectors, `r = 50`), the coefficient of variation of the
//! vector lengths on each side, and the fraction of non-zero entries:
//!
//! | Dataset | m | n | CoV Q | CoV P | non-zero |
//! |---|---|---|---|---|---|
//! | IE-NMF  | 771K  | 132K | 1.56 | 5.53 | 36.2 % |
//! | IE-SVD  | 771K  | 132K | 1.51 | 4.44 | 100 % |
//! | Netflix | 480K  | 17K  | 0.43 | 0.72 | 100 % |
//! | KDD     | 1000K | 624K | 0.38 | 0.40 | 100 % |
//!
//! Row-Top-k experiments on the IE datasets use the transposed matrices
//! (IE-NMFᵀ, IE-SVDᵀ): query and probe sides swap. Every spec can be scaled
//! down (`scaled`) so the whole evaluation runs at laptop scale while
//! preserving these statistics; see EXPERIMENTS.md for the scale used.

use lemp_linalg::VectorStore;

use crate::synthetic::{GeneratorConfig, ValueModel};

/// The evaluation datasets of the paper (plus the transposes used for
/// Row-Top-k on the information-extraction data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Non-negative factorization of the NYT argument–pattern matrix.
    IeNmf,
    /// SVD factorization of the same matrix.
    IeSvd,
    /// DSGD++ factorization of the Netflix ratings.
    Netflix,
    /// Factorization of the KDD-Cup'11 (Yahoo! Music) ratings.
    Kdd,
    /// IE-NMF with query/probe roles swapped.
    IeNmfT,
    /// IE-SVD with query/probe roles swapped.
    IeSvdT,
}

impl Dataset {
    /// The four base datasets in Table 1 order.
    pub fn all_base() -> [Dataset; 4] {
        [Dataset::IeNmf, Dataset::IeSvd, Dataset::Netflix, Dataset::Kdd]
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::IeNmf => "IE-NMF",
            Dataset::IeSvd => "IE-SVD",
            Dataset::Netflix => "Netflix",
            Dataset::Kdd => "KDD",
            Dataset::IeNmfT => "IE-NMF^T",
            Dataset::IeSvdT => "IE-SVD^T",
        }
    }

    /// Full-size specification as in Table 1.
    pub fn spec(&self) -> DatasetSpec {
        let dense = ValueModel::Gaussian;
        let nmf = ValueModel::NonNegativeSparse { density: 0.362 };
        match self {
            Dataset::IeNmf => DatasetSpec::new("IE-NMF", 771_000, 132_000, 50, 1.56, 5.53, nmf),
            Dataset::IeSvd => DatasetSpec::new("IE-SVD", 771_000, 132_000, 50, 1.51, 4.44, dense),
            Dataset::Netflix => DatasetSpec::new("Netflix", 480_000, 17_770, 50, 0.43, 0.72, dense),
            Dataset::Kdd => DatasetSpec::new("KDD", 1_000_000, 624_000, 50, 0.38, 0.40, dense),
            Dataset::IeNmfT => Dataset::IeNmf.spec().transposed("IE-NMF^T"),
            Dataset::IeSvdT => Dataset::IeSvd.spec().transposed("IE-SVD^T"),
        }
    }
}

/// A scale-parameterized dataset description; `generate` materializes the
/// query and probe stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Display name.
    pub name: String,
    /// Number of query vectors `m`.
    pub m: usize,
    /// Number of probe vectors `n`.
    pub n: usize,
    /// Dimensionality `r`.
    pub dim: usize,
    /// Target length CoV of the query side.
    pub query_cov: f64,
    /// Target length CoV of the probe side.
    pub probe_cov: f64,
    /// Value model shared by both sides (the factorization determines it).
    pub values: ValueModel,
}

impl DatasetSpec {
    fn new(
        name: &str,
        m: usize,
        n: usize,
        dim: usize,
        query_cov: f64,
        probe_cov: f64,
        values: ValueModel,
    ) -> Self {
        Self { name: name.to_string(), m, n, dim, query_cov, probe_cov, values }
    }

    /// Swaps query and probe sides (shape and length skew).
    pub fn transposed(&self, name: &str) -> Self {
        Self {
            name: name.to_string(),
            m: self.n,
            n: self.m,
            dim: self.dim,
            query_cov: self.probe_cov,
            probe_cov: self.query_cov,
            values: self.values,
        }
    }

    /// Scales both sides by `scale` (counts are rounded, floored at 64 so
    /// bucketization still has material to work with).
    pub fn scaled(&self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let shrink = |v: usize| (((v as f64) * scale).round() as usize).max(64);
        Self { m: shrink(self.m), n: shrink(self.n), ..self.clone() }
    }

    /// Materializes `(queries, probes)` deterministically from `seed`.
    ///
    /// The two sides use decorrelated seeds so Q and P are independent, as
    /// factor matrices of the two entity types of a factorization are.
    pub fn generate(&self, seed: u64) -> (VectorStore, VectorStore) {
        let q_cfg = GeneratorConfig {
            count: self.m,
            dim: self.dim,
            length_cov: self.query_cov,
            mean_length: 1.0,
            values: self.values,
        };
        let p_cfg = GeneratorConfig {
            count: self.n,
            dim: self.dim,
            length_cov: self.probe_cov,
            mean_length: 1.0,
            values: self.values,
        };
        (
            q_cfg.generate(seed ^ 0x51ED_CAFE),
            p_cfg.generate(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_linalg::stats;

    #[test]
    fn specs_match_table1_shapes() {
        let s = Dataset::IeNmf.spec();
        assert_eq!((s.m, s.n, s.dim), (771_000, 132_000, 50));
        let s = Dataset::Netflix.spec();
        assert_eq!((s.m, s.n), (480_000, 17_770));
        let s = Dataset::Kdd.spec();
        assert_eq!((s.m, s.n), (1_000_000, 624_000));
        assert!(matches!(Dataset::IeSvd.spec().values, ValueModel::Gaussian));
        assert!(matches!(Dataset::IeNmf.spec().values, ValueModel::NonNegativeSparse { .. }));
    }

    #[test]
    fn transpose_swaps_sides() {
        let base = Dataset::IeSvd.spec();
        let t = Dataset::IeSvdT.spec();
        assert_eq!((t.m, t.n), (base.n, base.m));
        assert_eq!(t.query_cov, base.probe_cov);
        assert_eq!(t.probe_cov, base.query_cov);
        assert_eq!(t.name, "IE-SVD^T");
    }

    #[test]
    fn scaling_preserves_statistics_settings() {
        let s = Dataset::Kdd.spec().scaled(0.01);
        assert_eq!(s.m, 10_000);
        assert_eq!(s.n, 6_240);
        assert_eq!(s.query_cov, 0.38);
        // floor kicks in for extreme scales
        let tiny = Dataset::Netflix.spec().scaled(1e-9);
        assert_eq!(tiny.m, 64);
        assert_eq!(tiny.n, 64);
    }

    #[test]
    fn generated_data_matches_spec_statistics() {
        let spec = Dataset::Netflix.spec().scaled(0.01);
        let (q, p) = spec.generate(99);
        assert_eq!(q.len(), spec.m);
        assert_eq!(p.len(), spec.n);
        assert_eq!(q.dim(), 50);
        let qc = stats::cov(&q.lengths());
        let pc = stats::cov(&p.lengths());
        assert!((qc - 0.43).abs() < 0.1, "query CoV {qc}");
        assert!((pc - 0.72).abs() < 0.25, "probe CoV {pc}");
    }

    #[test]
    fn sparse_dataset_has_expected_density() {
        let spec = Dataset::IeNmf.spec().scaled(0.002);
        let (q, p) = spec.generate(3);
        let dq = stats::nonzero_fraction(q.as_flat());
        let dp = stats::nonzero_fraction(p.as_flat());
        assert!((dq - 0.362).abs() < 0.03, "q density {dq}");
        assert!((dp - 0.362).abs() < 0.03, "p density {dp}");
    }

    #[test]
    fn generation_is_deterministic_and_sides_differ() {
        let spec = Dataset::IeSvd.spec().scaled(0.001);
        let (q1, p1) = spec.generate(5);
        let (q2, p2) = spec.generate(5);
        assert_eq!(q1, q2);
        assert_eq!(p1, p2);
        assert_ne!(q1.as_flat()[..50], p1.as_flat()[..50]);
    }

    #[test]
    fn all_base_names_are_unique() {
        let names: Vec<&str> = Dataset::all_base().iter().map(|d| d.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 4);
        assert_eq!(dedup.len(), 4);
    }
}
