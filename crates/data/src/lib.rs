//! Dataset substrate for the LEMP reproduction.
//!
//! The paper evaluates on four real datasets (Table 1): factorizations of
//! Netflix and KDD-Cup'11 ratings and SVD/NMF factorizations of a New York
//! Times open-information-extraction matrix. Those inputs are not
//! redistributable, so this crate builds the closest synthetic equivalents:
//!
//! * [`synthetic`] — generators that control exactly the statistics Table 1
//!   reports and that drive LEMP's behaviour: dimensionality `r`, the
//!   coefficient of variation (CoV) of vector lengths (log-normal length
//!   multipliers), and the fraction of non-zero entries (Bernoulli masks on
//!   non-negative NMF-like factors).
//! * [`datasets`] — named, scale-parameterized configurations reproducing
//!   each Table 1 row (IE-NMF, IE-SVD, Netflix, KDD and their transposes).
//! * [`mf`] — a from-scratch stochastic-gradient-descent matrix-factorization
//!   trainer with L2 regularization: the *provenance* of the paper's inputs
//!   (it cites DSGD++ with λ = 50 for Netflix). Factors produced by actual MF
//!   are used in examples and tests to confirm the calibrated generators are
//!   representative.
//! * [`io`] — a small self-describing binary format plus CSV import/export so
//!   users can run the library on their own factor matrices.
//! * [`calibrate`] — θ selection for the "recall level" workloads (@1k…@10M):
//!   the paper chooses θ so that the Above-θ result has a target size; we do
//!   the same exactly (small inputs) or by pair sampling (large inputs).
//! * [`rng`] — seeded random sources and a Box–Muller standard normal (kept
//!   local to avoid a `rand_distr` dependency).

#![warn(missing_docs)]

pub mod calibrate;
pub mod datasets;
pub mod io;
pub mod mf;
pub mod mm;
pub mod rng;
pub mod synthetic;

pub use datasets::{Dataset, DatasetSpec};
pub use synthetic::{GeneratorConfig, ValueModel};
