//! Workspace bootstrap smoke test: the facade's two headline entry points
//! (`Lemp::above_theta`, `Lemp::row_top_k`) run on a tiny synthetic matrix
//! and agree with the naive full-product baseline. If this fails, the
//! workspace wiring (manifests, re-exports, inter-crate DAG) is broken in a
//! way the unit tests may not pinpoint.

use lemp::baselines::types::{canonical_pairs, topk_equivalent};
use lemp::baselines::Naive;
use lemp::linalg::VectorStore;
use lemp::{Lemp, LempVariant};

/// A deterministic 12×3 probe store and 4×3 query store with mixed signs
/// and length skew, small enough to check by hand if it ever breaks.
fn tiny_matrices() -> (VectorStore, VectorStore) {
    let probes = VectorStore::from_rows(&[
        vec![1.0, 0.0, 0.0],
        vec![0.0, 1.0, 0.0],
        vec![0.0, 0.0, 1.0],
        vec![0.5, 0.5, 0.5],
        vec![-1.0, 0.2, 0.1],
        vec![2.0, -0.3, 0.4],
        vec![0.1, 0.1, 0.1],
        vec![3.0, 3.0, -3.0],
        vec![-0.7, -0.8, -0.9],
        vec![0.05, 2.5, 0.0],
        vec![1.2, 1.1, 1.0],
        vec![-2.0, 0.0, 2.0],
    ])
    .expect("finite probe rows");
    let queries = VectorStore::from_rows(&[
        vec![1.0, 1.0, 1.0],
        vec![-1.0, 0.5, 0.0],
        vec![0.0, 0.0, 2.0],
        vec![0.3, -0.2, 0.1],
    ])
    .expect("finite query rows");
    (queries, probes)
}

#[test]
fn above_theta_matches_naive_on_tiny_matrix() {
    let (queries, probes) = tiny_matrices();
    for theta in [-0.5, 0.0, 0.4, 1.0, 2.5] {
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        let mut engine = Lemp::builder().build(&probes);
        let out = engine.above_theta(&queries, theta);
        assert_eq!(
            canonical_pairs(&out.entries),
            canonical_pairs(&expect),
            "Above-θ diverged from naive at θ = {theta}"
        );
    }
}

#[test]
fn row_top_k_matches_naive_on_tiny_matrix() {
    let (queries, probes) = tiny_matrices();
    for k in [1, 3, 7, 20] {
        let (expect, _) = Naive.row_top_k(&queries, &probes, k);
        let mut engine = Lemp::builder().build(&probes);
        let out = engine.row_top_k(&queries, k);
        assert!(topk_equivalent(&out.lists, &expect, 1e-12), "Row-Top-{k} diverged from naive");
    }
}

#[test]
fn every_exact_variant_agrees_on_tiny_matrix() {
    let (queries, probes) = tiny_matrices();
    let (expect, _) = Naive.above_theta(&queries, &probes, 0.4);
    let expect = canonical_pairs(&expect);
    for variant in LempVariant::all() {
        if variant.is_approximate() {
            continue;
        }
        let mut engine = Lemp::builder().variant(variant).build(&probes);
        let out = engine.above_theta(&queries, 0.4);
        assert_eq!(
            canonical_pairs(&out.entries),
            expect,
            "variant {} diverged from naive",
            variant.name()
        );
    }
}

#[test]
fn documented_facade_reexports_resolve() {
    // Compile-time check that the re-exports the crate docs promise exist.
    use lemp::{
        AboveThetaOutput, AdaptiveConfig, BanditPolicy, BucketPolicy, Entry, LempBuilder, RunStats,
        TopKOutput,
    };
    fn assert_exists<T>() {}
    assert_exists::<AboveThetaOutput>();
    assert_exists::<AdaptiveConfig>();
    assert_exists::<BanditPolicy>();
    assert_exists::<BucketPolicy>();
    assert_exists::<Entry>();
    assert_exists::<LempBuilder>();
    assert_exists::<RunStats>();
    assert_exists::<TopKOutput>();
    // The durability subsystem rides along under `lemp::store`.
    assert_exists::<lemp::store::DurableEngine>();
    assert_exists::<lemp::store::StoreOptions>();
    assert_exists::<lemp::store::SyncPolicy>();
}
