//! Integration tests for the chunked drivers, role reversal and result
//! serialization across crates and datasets.

use lemp::baselines::export::{read_entries_csv, read_topk_csv, write_entries_csv, write_topk_csv};
use lemp::baselines::types::{canonical_pairs, topk_equivalent, TopKLists};
use lemp::baselines::Naive;
use lemp::core::column_top_k;
use lemp::data::datasets::Dataset;
use lemp::linalg::VectorStore;
use lemp::{Lemp, LempVariant};

fn workload(dataset: Dataset, scale: f64, seed: u64) -> (VectorStore, VectorStore) {
    dataset.spec().scaled(scale).generate(seed)
}

#[test]
fn chunked_above_matches_monolithic_on_every_dataset() {
    for (dataset, theta) in [(Dataset::Netflix, 1.5), (Dataset::IeSvd, 2.0), (Dataset::IeNmf, 1.0)]
    {
        let (queries, probes) = workload(dataset, 0.001, 31);
        let mut engine = Lemp::builder().sample_size(8).build(&probes);
        let expect = engine.above_theta(&queries, theta);
        let mut engine = Lemp::builder().sample_size(8).build(&probes);
        let mut got = Vec::new();
        engine.above_theta_chunked(&queries, theta, 37, |es| got.extend_from_slice(es));
        assert_eq!(
            canonical_pairs(&got),
            canonical_pairs(&expect.entries),
            "{dataset:?} chunked run diverges"
        );
    }
}

#[test]
fn chunked_runs_work_with_threads_and_variants() {
    let (queries, probes) = workload(Dataset::Netflix, 0.001, 32);
    let k = 4;
    let mut reference = Lemp::builder().sample_size(8).build(&probes);
    let expect = reference.row_top_k(&queries, k);
    for variant in [LempVariant::L, LempVariant::I, LempVariant::LI] {
        for threads in [1, 4] {
            let mut engine =
                Lemp::builder().variant(variant).threads(threads).sample_size(8).build(&probes);
            let mut lists: TopKLists = vec![Vec::new(); queries.len()];
            engine.row_top_k_chunked(&queries, k, 25, |q, l| lists[q as usize] = l.to_vec());
            assert!(
                topk_equivalent(&lists, &expect.lists, 1e-9),
                "{} with {threads} threads diverges",
                variant.name()
            );
        }
    }
}

#[test]
fn column_top_k_equals_transposed_row_top_k() {
    let (queries, probes) = workload(Dataset::IeNmf, 0.0008, 33);
    let k = 3;
    let out = column_top_k(&queries, &probes, k, Lemp::builder().sample_size(8));
    assert_eq!(out.lists.len(), probes.len());
    let (expect, _) = Naive.row_top_k(&probes, &queries, k);
    assert!(topk_equivalent(&out.lists, &expect, 1e-9));
}

#[test]
fn engine_output_roundtrips_through_export() {
    let (queries, probes) = workload(Dataset::Netflix, 0.0008, 34);
    let mut engine = Lemp::builder().build(&probes);

    let above = engine.above_theta(&queries, 1.2);
    let mut sorted = above.entries.clone();
    sorted.sort_by_key(|e| (e.query, e.probe));
    let mut buf = Vec::new();
    write_entries_csv(&mut buf, &sorted).unwrap();
    let back = read_entries_csv(&buf[..]).unwrap();
    assert_eq!(canonical_pairs(&back), canonical_pairs(&above.entries));
    for (a, b) in back.iter().zip(&sorted) {
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "score lost precision in CSV");
    }

    let top = engine.row_top_k(&queries, 5);
    let mut buf = Vec::new();
    write_topk_csv(&mut buf, &top.lists).unwrap();
    let mut back = read_topk_csv(&buf[..]).unwrap();
    back.resize_with(top.lists.len(), Vec::new); // trailing empties
    assert!(topk_equivalent(&back, &top.lists, 0.0));
}

#[test]
fn sampled_theta_calibration_brackets_the_exact_recall_level() {
    // The bench workloads calibrate θ for "@n recall levels" by pair
    // sampling (`lemp_data::calibrate`); `global_top_n` computes the same
    // θ exactly. The sampled estimate must land near the exact one: the
    // result count at the sampled θ should be within a factor of ~2 of the
    // target (sampling noise), and the exact θ reproduces it precisely.
    let (queries, probes) = workload(Dataset::IeSvd, 0.0015, 36);
    let n = 400;
    let mut engine = Lemp::builder().build(&probes);
    let top = engine.global_top_n(&queries, n, 128);
    assert_eq!(top.len(), n);
    let exact_theta = top.last().unwrap().value;
    let exact_count = engine.above_theta(&queries, exact_theta).entries.len();
    assert!(exact_count >= n, "exact θ must reproduce ≥ n entries");

    let sampled = lemp::data::calibrate::sampled_theta(
        &queries,
        &probes,
        n,
        100_000.min(queries.len() * probes.len()),
        37,
    )
    .expect("calibration succeeds on non-empty data");
    let sampled_count = engine.above_theta(&queries, sampled).entries.len();
    assert!(
        sampled_count >= n / 3 && sampled_count <= n * 3,
        "sampled θ={sampled} yields {sampled_count} entries for target {n} (exact θ={exact_theta})"
    );
}

#[test]
fn matrix_market_files_feed_the_engine() {
    // Full pipeline: generate → write MM → read MM → retrieve; results
    // must match the in-memory run bit for bit.
    let (queries, probes) = workload(Dataset::IeSvd, 0.0005, 35);
    let dir = std::env::temp_dir();
    let qp = dir.join(format!("lemp-int-q-{}.mtx", std::process::id()));
    let pp = dir.join(format!("lemp-int-p-{}.mtx", std::process::id()));
    lemp::data::mm::write_mm_array(&queries, &qp).unwrap();
    lemp::data::mm::write_mm_coordinate(&probes, &pp).unwrap();
    let q2 = lemp::data::mm::read_mm(&qp).unwrap();
    let p2 = lemp::data::mm::read_mm(&pp).unwrap();
    assert_eq!(queries, q2);
    assert_eq!(probes, p2);
    let mut a = Lemp::builder().build(&probes);
    let mut b = Lemp::builder().build(&p2);
    let ra = a.above_theta(&queries, 1.0);
    let rb = b.above_theta(&q2, 1.0);
    assert_eq!(canonical_pairs(&ra.entries), canonical_pairs(&rb.entries));
    std::fs::remove_file(&qp).ok();
    std::fs::remove_file(&pp).ok();
}
