//! Integration tests for the extension APIs — |Above-θ|, floored Row-Top-k
//! and adaptive selection — across crate boundaries: persisted engine
//! images, multi-threaded configurations, and the facade re-exports.

use lemp::baselines::types::{canonical_pairs, topk_equivalent};
use lemp::baselines::Naive;
use lemp::data::synthetic::GeneratorConfig;
use lemp::linalg::VectorStore;
use lemp::{AdaptiveConfig, BanditPolicy, Lemp, LempVariant};

fn data(m: usize, n: usize, cov: f64, seed: u64) -> (VectorStore, VectorStore) {
    let q = GeneratorConfig::gaussian(m, 12, cov).generate(seed);
    let p = GeneratorConfig::gaussian(n, 12, cov).generate(seed + 1);
    (q, p)
}

fn temp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lemp-new-apis-{tag}-{}.eng", std::process::id()));
    p
}

#[test]
fn abs_above_on_reloaded_engine_matches_fresh() {
    let (q, p) = data(40, 300, 1.0, 9000);
    let theta = 1.1;
    let mut fresh = Lemp::builder().variant(LempVariant::LI).build(&p);
    let expect = fresh.abs_above_theta(&q, theta);
    assert!(!expect.entries.is_empty(), "fixture must produce results");

    let path = temp("abs");
    fresh.save(&path).unwrap();
    let mut loaded = Lemp::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let got = loaded.abs_above_theta(&q, theta);
    assert_eq!(canonical_pairs(&got.entries), canonical_pairs(&expect.entries));
}

#[test]
fn abs_above_runs_multithreaded() {
    let (q, p) = data(50, 250, 0.9, 9100);
    let theta = 0.9;
    let mut serial = Lemp::builder().build(&p);
    let mut parallel = Lemp::builder().threads(4).build(&p);
    let a = serial.abs_above_theta(&q, theta);
    let b = parallel.abs_above_theta(&q, theta);
    assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
    assert!(a.entries.iter().any(|e| e.value < 0.0), "two-sided fixture");
}

#[test]
fn floored_topk_across_variants() {
    let (q, p) = data(25, 200, 0.8, 9200);
    let k = 4;
    // A floor from the data: the median 2nd-best value, nudged off-score.
    let (full, _) = Naive.row_top_k(&q, &p, 2);
    let mut seconds: Vec<f64> = full.iter().map(|l| l[1].score).collect();
    seconds.sort_by(f64::total_cmp);
    let floor = seconds[seconds.len() / 2] + 1e-7;

    let mut reference: Option<Vec<Vec<usize>>> = None;
    for variant in [LempVariant::L, LempVariant::I, LempVariant::LI, LempVariant::Ta] {
        let mut engine = Lemp::builder().variant(variant).sample_size(6).build(&p);
        let out = engine.row_top_k_with_floor(&q, k, floor);
        for list in &out.lists {
            assert!(list.iter().all(|i| i.score >= floor), "{}", variant.name());
            assert!(list.len() <= k);
        }
        let ids: Vec<Vec<usize>> =
            out.lists.iter().map(|l| l.iter().map(|i| i.id).collect()).collect();
        match &reference {
            None => reference = Some(ids),
            Some(expect) => assert_eq!(&ids, expect, "{} diverges", variant.name()),
        }
    }
}

#[test]
fn adaptive_on_reloaded_engine_matches_naive() {
    let (q, p) = data(30, 250, 1.1, 9300);
    let engine = Lemp::builder().build(&p);
    let path = temp("adaptive");
    engine.save(&path).unwrap();
    let mut loaded = Lemp::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let acfg = AdaptiveConfig {
        policy: BanditPolicy::EpsilonGreedy { epsilon: 0.2, seed: 3 },
        ..Default::default()
    };
    let (expect, _) = Naive.above_theta(&q, &p, 1.0);
    let (out, report) = loaded.above_theta_adaptive(&q, 1.0, &acfg);
    assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect));
    assert_eq!(report.buckets.len(), loaded.buckets().bucket_count());

    let (expect_k, _) = Naive.row_top_k(&q, &p, 5);
    let (out, _) = loaded.row_top_k_adaptive(&q, 5, &acfg);
    assert!(topk_equivalent(&out.lists, &expect_k, 1e-9));
}

#[test]
fn adaptive_report_names_align_with_arm_stats() {
    let (q, p) = data(40, 200, 0.7, 9400);
    let mut engine = Lemp::new(&p);
    let (_, report) = engine.row_top_k_adaptive(&q, 3, &AdaptiveConfig::default());
    assert!(!report.arm_names.is_empty());
    assert_eq!(report.arm_names[0], "LENGTH");
    for bins in &report.buckets {
        for bin in bins {
            assert_eq!(bin.arms.len(), report.arm_names.len());
            assert!(bin.lo < bin.hi);
            if let Some(best) = bin.best_arm {
                assert!(best < report.arm_names.len());
                assert!(bin.arms[best].pulls > 0, "best arm must have been pulled");
            }
        }
    }
}

#[test]
fn floor_interacts_with_streaming_column_top_k_reversal() {
    // Column-Top-k is Row-Top-k with roles reversed (Sec. 2); a floored
    // row query against the transposed role assignment must agree with
    // the brute-force scan on the same orientation.
    let (q, p) = data(20, 60, 0.6, 9500);
    let k = 3;
    let floor = 0.4;
    let mut engine = Lemp::builder().sample_size(4).build(&q); // probes := Q
    let out = engine.row_top_k_with_floor(&p, k, floor);
    for (j, list) in out.lists.iter().enumerate() {
        let mut expect: Vec<(usize, f64)> = (0..q.len())
            .map(|i| (i, p.dot_between(j, &q, i)))
            .filter(|&(_, v)| v >= floor)
            .collect();
        expect.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
        expect.truncate(k);
        let got: Vec<usize> = list.iter().map(|i| i.id).collect();
        let want: Vec<usize> = expect.iter().map(|&(i, _)| i).collect();
        assert_eq!(got, want, "column {j}");
    }
}
