//! Property-based tests (proptest) on the core invariants of the paper's
//! machinery.

use lemp::core::bounds::{feasible_region, local_threshold, max_cosine_given_coord};
use lemp::core::bucket::{BucketPolicy, ProbeBuckets};
use lemp::linalg::{kernels, stats, TopK, VectorStore};
use proptest::prelude::*;

/// A random vector store: `n` vectors of dimension `dim` with values and
/// per-vector scales drawn from the given ranges.
fn store_strategy(
    n: std::ops::Range<usize>,
    dim: std::ops::Range<usize>,
) -> impl Strategy<Value = VectorStore> {
    (n, dim).prop_flat_map(|(n, dim)| {
        proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, dim..=dim), n..=n)
            .prop_map(move |rows| VectorStore::from_rows(&rows).expect("finite rows"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Sec. 4.2: any unit vector pair with cosine ≥ θ̂ has every coordinate
    /// of p̄ inside the feasible region of the matching q̄ coordinate.
    #[test]
    fn feasible_region_soundness(
        qf in -1.0f64..1.0,
        th in -1.2f64..1.0,
        x in -1.0f64..1.0,
    ) {
        let (lo, hi) = feasible_region(qf, th);
        if max_cosine_given_coord(qf, x) >= th {
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9,
                "feasible x={x} outside [{lo}, {hi}] for qf={qf}, th={th}");
        }
    }

    /// The region is monotone: raising the threshold never widens it.
    #[test]
    fn feasible_region_monotone_in_threshold(
        qf in -1.0f64..1.0,
        th1 in -1.0f64..1.0,
        delta in 0.0f64..0.5,
    ) {
        let th2 = (th1 + delta).min(1.0);
        let (lo1, hi1) = feasible_region(qf, th1);
        let (lo2, hi2) = feasible_region(qf, th2);
        prop_assert!(lo2 >= lo1 - 1e-9);
        prop_assert!(hi2 <= hi1 + 1e-9);
    }

    /// Local thresholds scale inversely with both lengths (Eq. 3).
    #[test]
    fn local_threshold_scaling(
        theta in 0.01f64..10.0,
        q in 0.01f64..10.0,
        lb in 0.01f64..10.0,
        f in 1.0f64..4.0,
    ) {
        let t = local_threshold(theta, q, lb);
        prop_assert!((local_threshold(theta, q * f, lb) - t / f).abs() < 1e-9 * t.abs().max(1.0));
        prop_assert!((local_threshold(theta * f, q, lb) - t * f).abs() < 1e-9 * (t * f).abs().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Bucketization is a partition ordered by length with correct metadata.
    #[test]
    fn bucketization_invariants(store in store_strategy(1..120, 1..8), ratio in 0.5f64..1.0) {
        let policy = BucketPolicy { length_ratio: ratio, min_bucket: 5, cache_bytes: 16 << 10, ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        let mut seen = vec![false; store.len()];
        let mut last_max = f64::INFINITY;
        for b in pb.buckets() {
            prop_assert!(!b.is_empty());
            prop_assert!(b.max_len <= last_max + 1e-12);
            last_max = b.max_len;
            prop_assert!((b.lengths[0] - b.max_len).abs() < 1e-9);
            for w in b.lengths.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
            for (lid, &id) in b.ids.iter().enumerate() {
                prop_assert!(!seen[id as usize]);
                seen[id as usize] = true;
                // length × direction reconstructs the original vector
                let orig = store.vector(id as usize);
                let dir = b.dirs.vector(lid);
                for (f, &o) in orig.iter().enumerate() {
                    prop_assert!((b.lengths[lid] * dir[f] - o).abs() < 1e-9);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// TopK matches a full sort for arbitrary scores.
    #[test]
    fn topk_matches_sort(scores in proptest::collection::vec(-100.0f64..100.0, 0..80), k in 0usize..20) {
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let got: Vec<usize> = top.drain_sorted().into_iter().map(|x| x.id).collect();
        let mut expect: Vec<usize> = (0..scores.len()).collect();
        expect.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    /// Quantiles are monotone and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(xs in proptest::collection::vec(-50.0f64..50.0, 1..60), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = stats::quantile(&xs, lo);
        let b = stats::quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    /// Binary IO round-trips arbitrary stores exactly.
    #[test]
    fn binary_io_roundtrip(store in store_strategy(1..30, 1..6)) {
        let mut path = std::env::temp_dir();
        path.push(format!("lemp-prop-io-{}-{}", std::process::id(), store.as_flat().len()));
        lemp::data::io::write_binary(&store, &path).unwrap();
        let back = lemp::data::io::read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(store, back);
    }

    /// The dot kernel matches the naive sum for arbitrary vectors.
    #[test]
    fn dot_kernel_matches_reference(
        a in proptest::collection::vec(-10.0f64..10.0, 0..40),
    ) {
        let b: Vec<f64> = a.iter().rev().cloned().collect();
        let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = kernels::dot(&a, &b);
        prop_assert!((got - expect).abs() < 1e-9 * (1.0 + expect.abs()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole engine agrees with Naive on arbitrary inputs (the paper's
    /// exactness claim, as a property).
    #[test]
    fn lemp_li_is_exact_on_arbitrary_stores(
        probes in store_strategy(1..100, 1..6),
        queries in store_strategy(1..20, 1..6),
        theta in -1.0f64..5.0,
    ) {
        // Dimensions must match: regenerate queries at the probe dimension.
        let dim = probes.dim();
        let q_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|v| (0..dim).map(|f| v.get(f).copied().unwrap_or(0.41)).collect())
            .collect();
        let queries = VectorStore::from_rows(&q_rows).unwrap();

        use lemp::baselines::types::{canonical_pairs, topk_equivalent};
        use lemp::baselines::Naive;
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        let mut engine = lemp::Lemp::builder().sample_size(4).build(&probes);
        let out = engine.above_theta(&queries, theta);
        prop_assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect));

        let (expect_k, _) = Naive.row_top_k(&queries, &probes, 3);
        let out = engine.row_top_k(&queries, 3);
        prop_assert!(topk_equivalent(&out.lists, &expect_k, 1e-9));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The AVX2 kernels are bit-identical to the scalar reference on
    /// arbitrary inputs (same per-lane operation order, no FMA). Skipped on
    /// machines without AVX2. Forcing the ISA is safe under concurrent
    /// tests precisely because of the property being verified.
    #[test]
    fn simd_dot_and_dist_are_bit_identical_to_scalar(
        a in proptest::collection::vec(-100.0f64..100.0, 0..120),
    ) {
        use lemp::linalg::simd;
        if simd::avx2_supported() {
            let b: Vec<f64> = a.iter().rev().map(|x| x * 0.7 - 0.1).collect();
            let prev = simd::override_isa(simd::Isa::Scalar);
            let dot_s = kernels::dot(&a, &b);
            let dist_s = kernels::dist_sq(&a, &b);
            simd::override_isa(simd::Isa::Avx2);
            let dot_v = kernels::dot(&a, &b);
            let dist_v = kernels::dist_sq(&a, &b);
            simd::override_isa(prev);
            prop_assert_eq!(dot_s.to_bits(), dot_v.to_bits());
            prop_assert_eq!(dist_s.to_bits(), dist_v.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// |Above-θ| equals the brute-force two-sided scan, with exact signed
    /// values, on arbitrary stores.
    #[test]
    fn abs_above_theta_is_exact(
        probes in store_strategy(1..80, 2..6),
        queries in store_strategy(1..15, 2..6),
        theta in 0.05f64..4.0,
    ) {
        let dim = probes.dim();
        let q_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|v| (0..dim).map(|f| v.get(f).copied().unwrap_or(-0.3)).collect())
            .collect();
        let queries = VectorStore::from_rows(&q_rows).unwrap();

        let mut expect: Vec<(u32, u32)> = Vec::new();
        for i in 0..queries.len() {
            for j in 0..probes.len() {
                if queries.dot_between(i, &probes, j).abs() >= theta {
                    expect.push((i as u32, j as u32));
                }
            }
        }
        expect.sort_unstable();
        let mut engine = lemp::Lemp::builder().sample_size(4).build(&probes);
        let out = engine.abs_above_theta(&queries, theta);
        use lemp::baselines::types::canonical_pairs;
        prop_assert_eq!(canonical_pairs(&out.entries), expect);
        for e in &out.entries {
            let v = queries.dot_between(e.query as usize, &probes, e.probe as usize);
            prop_assert_eq!(v.to_bits(), e.value.to_bits());
        }
    }

    /// Row-Top-k with a floor equals the plain Row-Top-k filtered by the
    /// floor, whenever the floor is not within rounding distance of any
    /// score (tied boundaries may legally differ).
    #[test]
    fn floored_topk_equals_filtered_topk(
        probes in store_strategy(2..80, 2..6),
        queries in store_strategy(1..12, 2..6),
        k in 1usize..6,
        pick in 0.0f64..1.0,
    ) {
        let dim = probes.dim();
        let q_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|v| (0..dim).map(|f| v.get(f).copied().unwrap_or(0.9)).collect())
            .collect();
        let queries = VectorStore::from_rows(&q_rows).unwrap();

        let mut engine = lemp::Lemp::builder().sample_size(4).build(&probes);
        let plain = engine.row_top_k(&queries, k);
        // Floor at a score quantile, nudged off every observed score.
        let mut scores: Vec<f64> = plain.lists.iter().flatten().map(|i| i.score).collect();
        prop_assume!(!scores.is_empty());
        scores.sort_by(f64::total_cmp);
        let idx = ((scores.len() - 1) as f64 * pick) as usize;
        let floor = scores[idx] + 1e-7;
        prop_assume!(scores.iter().all(|s| (s - floor).abs() > 1e-9));

        let floored = engine.row_top_k_with_floor(&queries, k, floor);
        for (plain_list, floored_list) in plain.lists.iter().zip(&floored.lists) {
            let expect: Vec<usize> = plain_list
                .iter()
                .filter(|i| i.score >= floor)
                .map(|i| i.id)
                .collect();
            let got: Vec<usize> = floored_list.iter().map(|i| i.id).collect();
            prop_assert_eq!(got, expect);
            prop_assert!(floored_list.iter().all(|i| i.score >= floor));
        }
    }

    /// The adaptive driver is exact under arbitrary bandit hyperparameters
    /// (a bad policy can only be slow, never wrong).
    #[test]
    fn adaptive_is_exact_under_arbitrary_policies(
        probes in store_strategy(1..80, 2..6),
        queries in store_strategy(1..12, 2..6),
        theta in -0.5f64..3.0,
        epsilon in 0.0f64..1.0,
        seed in 0u64..1000,
        bins in 1usize..6,
    ) {
        let dim = probes.dim();
        let q_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|v| (0..dim).map(|f| v.get(f).copied().unwrap_or(0.2)).collect())
            .collect();
        let queries = VectorStore::from_rows(&q_rows).unwrap();

        use lemp::baselines::types::{canonical_pairs, topk_equivalent};
        use lemp::baselines::Naive;
        use lemp::{AdaptiveConfig, BanditPolicy};
        let acfg = AdaptiveConfig {
            policy: BanditPolicy::EpsilonGreedy { epsilon, seed },
            theta_bins: bins,
            ..Default::default()
        };
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        let mut engine = lemp::Lemp::new(&probes);
        let (out, _) = engine.above_theta_adaptive(&queries, theta, &acfg);
        prop_assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect));

        let (expect_k, _) = Naive.row_top_k(&queries, &probes, 3);
        let (out, _) = engine.row_top_k_adaptive(&queries, 3, &acfg);
        prop_assert!(topk_equivalent(&out.lists, &expect_k, 1e-9));
    }
}
