//! Edge-case and failure-injection tests across the whole stack.

use lemp::baselines::types::{canonical_pairs, topk_equivalent};
use lemp::baselines::Naive;
use lemp::data::synthetic::GeneratorConfig;
use lemp::linalg::VectorStore;
use lemp::{Lemp, LempVariant};

fn engine_for(probes: &VectorStore, variant: LempVariant) -> Lemp {
    Lemp::builder().variant(variant).sample_size(4).build(probes)
}

fn exact_variants() -> impl Iterator<Item = LempVariant> {
    LempVariant::all().into_iter().filter(|v| !v.is_approximate())
}

#[test]
fn zero_probe_vectors_are_handled_everywhere() {
    // Some probes are exactly zero; θ > 0 excludes them, θ ≤ 0 includes.
    let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0 + i as f64 * 0.1, 0.5]).collect();
    rows.push(vec![0.0, 0.0]);
    rows.push(vec![0.0, 0.0]);
    let probes = VectorStore::from_rows(&rows).unwrap();
    let queries = GeneratorConfig::gaussian(10, 2, 0.5).generate(1);
    for theta in [1.0, 0.0, -0.5] {
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        for variant in exact_variants() {
            let mut engine = engine_for(&probes, variant);
            let out = engine.above_theta(&queries, theta);
            assert_eq!(
                canonical_pairs(&out.entries),
                canonical_pairs(&expect),
                "{} at theta {theta}",
                variant.name()
            );
        }
    }
}

#[test]
fn zero_query_vectors_are_handled_everywhere() {
    let probes = GeneratorConfig::gaussian(60, 3, 0.5).generate(2);
    let queries =
        VectorStore::from_rows(&[vec![0.0, 0.0, 0.0], vec![1.0, 0.2, -0.3], vec![0.0, 0.0, 0.0]])
            .unwrap();
    for theta in [0.5, 0.0] {
        let (expect, _) = Naive.above_theta(&queries, &probes, theta);
        for variant in exact_variants() {
            let mut engine = engine_for(&probes, variant);
            let out = engine.above_theta(&queries, theta);
            assert_eq!(
                canonical_pairs(&out.entries),
                canonical_pairs(&expect),
                "{} at theta {theta}",
                variant.name()
            );
        }
    }
    // Top-k with a zero query: any k probes tie at score 0.
    let (expect, _) = Naive.row_top_k(&queries, &probes, 4);
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.row_top_k(&queries, 4);
        assert!(topk_equivalent(&out.lists, &expect, 1e-9), "{}", variant.name());
    }
}

#[test]
fn all_duplicate_probes() {
    let probes = VectorStore::from_rows(&vec![vec![0.6, 0.8]; 40]).unwrap();
    let queries = GeneratorConfig::gaussian(8, 2, 0.3).generate(3);
    let (expect, _) = Naive.above_theta(&queries, &probes, 0.5);
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.above_theta(&queries, 0.5);
        assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect), "{}", variant.name());
    }
}

#[test]
fn single_probe_and_single_query() {
    let probes = VectorStore::from_rows(&[vec![1.0, 2.0, 2.0]]).unwrap();
    let queries = VectorStore::from_rows(&[vec![3.0, 0.0, 0.0]]).unwrap();
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.above_theta(&queries, 2.0);
        assert_eq!(out.entries.len(), 1, "{}", variant.name());
        assert!((out.entries[0].value - 3.0).abs() < 1e-9);
        let out = engine.row_top_k(&queries, 3);
        assert_eq!(out.lists[0].len(), 1);
    }
}

#[test]
fn dimension_one_vectors() {
    let probes = VectorStore::from_rows(&[vec![2.0], vec![-1.0], vec![0.5], vec![3.0]]).unwrap();
    let queries = VectorStore::from_rows(&[vec![1.5], vec![-2.0]]).unwrap();
    let (expect, _) = Naive.above_theta(&queries, &probes, 1.0);
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.above_theta(&queries, 1.0);
        assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect), "{}", variant.name());
    }
    let (expect, _) = Naive.row_top_k(&queries, &probes, 2);
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.row_top_k(&queries, 2);
        assert!(topk_equivalent(&out.lists, &expect, 1e-9), "{}", variant.name());
    }
}

#[test]
fn negative_theta_returns_bulk_results() {
    let probes = GeneratorConfig::gaussian(30, 4, 0.5).generate(4);
    let queries = GeneratorConfig::gaussian(5, 4, 0.5).generate(5);
    // θ far below the minimum: every pair qualifies.
    let (expect, _) = Naive.above_theta(&queries, &probes, -100.0);
    assert_eq!(expect.len(), 150);
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.above_theta(&queries, -100.0);
        assert_eq!(out.entries.len(), 150, "{}", variant.name());
    }
}

#[test]
fn extreme_length_spread_does_not_break_math() {
    // 6 orders of magnitude of length spread: thresholds and feasible
    // regions go through extreme values.
    let rows: Vec<Vec<f64>> =
        (0..60).map(|i| vec![10f64.powi(i % 7 - 3), 0.5 * (i as f64).cos()]).collect();
    let probes = VectorStore::from_rows(&rows).unwrap();
    let queries = GeneratorConfig::gaussian(10, 2, 2.0).generate(6);
    let theta = lemp::data::calibrate::exact_theta(&queries, &probes, 40).unwrap();
    let (expect, _) = Naive.above_theta(&queries, &probes, theta);
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.above_theta(&queries, theta);
        assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect), "{}", variant.name());
    }
}

#[test]
fn tiny_cache_budget_still_exact() {
    // Degenerate bucketization: cache budget below one vector's footprint
    // forces min-size buckets.
    let probes = GeneratorConfig::gaussian(150, 6, 1.0).generate(7);
    let queries = GeneratorConfig::gaussian(20, 6, 1.0).generate(8);
    let theta = lemp::data::calibrate::exact_theta(&queries, &probes, 100).unwrap();
    let (expect, _) = Naive.above_theta(&queries, &probes, theta);
    let policy = lemp::BucketPolicy { cache_bytes: 1, min_bucket: 2, ..Default::default() };
    let mut engine = Lemp::builder().policy(policy).sample_size(4).build(&probes);
    assert!(engine.buckets().bucket_count() > 30);
    let out = engine.above_theta(&queries, theta);
    assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect));
}

#[test]
fn repeated_runs_are_deterministic() {
    let probes = GeneratorConfig::gaussian(120, 8, 1.0).generate(9);
    let queries = GeneratorConfig::gaussian(15, 8, 1.0).generate(10);
    let mut engine = Lemp::builder().sample_size(5).build(&probes);
    let a = engine.above_theta(&queries, 0.8);
    let b = engine.above_theta(&queries, 0.8);
    assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
    // And across fresh engines (fresh lazy indexes, fresh tuning).
    let mut engine2 = Lemp::builder().sample_size(5).build(&probes);
    let c = engine2.above_theta(&queries, 0.8);
    assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&c.entries));
}

#[test]
fn counters_are_consistent() {
    let probes = GeneratorConfig::gaussian(200, 8, 1.0).generate(11);
    let queries = GeneratorConfig::gaussian(30, 8, 1.0).generate(12);
    let theta = lemp::data::calibrate::exact_theta(&queries, &probes, 300).unwrap();
    for variant in exact_variants() {
        let mut engine = engine_for(&probes, variant);
        let out = engine.above_theta(&queries, theta);
        let c = &out.stats.counters;
        assert_eq!(c.queries, 30, "{}", variant.name());
        assert_eq!(c.results, out.entries.len() as u64, "{}", variant.name());
        assert!(c.retrieval_ns > 0, "{}", variant.name());
        // Verified exact methods never report fewer candidates than results.
        assert!(c.candidates >= c.results, "{}", variant.name());
    }
}

#[test]
fn blsh_false_negatives_are_bounded_not_silent() {
    // Failure injection for the approximate method: shrink the signature to
    // 4 bits — pruning gets aggressive, but reported entries must still all
    // be true positives (no false positives ever).
    let probes = GeneratorConfig::gaussian(300, 10, 1.0).generate(13);
    let queries = GeneratorConfig::gaussian(40, 10, 1.0).generate(14);
    let theta = lemp::data::calibrate::exact_theta(&queries, &probes, 400).unwrap();
    let mut engine =
        Lemp::builder().variant(LempVariant::Blsh).blsh(4, 0.03).sample_size(4).build(&probes);
    let out = engine.above_theta(&queries, theta);
    for e in &out.entries {
        let dot = lemp::linalg::kernels::dot(
            queries.vector(e.query as usize),
            probes.vector(e.probe as usize),
        );
        assert!(dot >= theta - 1e-9, "false positive reported");
        assert!((dot - e.value).abs() < 1e-9);
    }
}

// ── Edge cases for the extension APIs (abs, floor, adaptive) ────────────

#[test]
fn abs_above_with_degenerate_inputs() {
    use lemp::Entry;
    // Single dimension, single probe: the two passes must not duplicate.
    let p = VectorStore::from_rows(&[vec![2.0]]).unwrap();
    let q = VectorStore::from_rows(&[vec![1.0], vec![-1.0], vec![0.0]]).unwrap();
    let mut engine = Lemp::new(&p);
    let out = engine.abs_above_theta(&q, 1.5);
    let mut got: Vec<Entry> = out.entries.clone();
    got.sort_by_key(|e| e.query);
    assert_eq!(got.len(), 2);
    assert_eq!((got[0].query, got[0].value), (0, 2.0));
    assert_eq!((got[1].query, got[1].value), (1, -2.0));
    // Zero queries: nothing qualifies (|0| < θ).
    let zeros = VectorStore::from_rows(&[vec![0.0]]).unwrap();
    assert!(engine.abs_above_theta(&zeros, 0.1).entries.is_empty());
    // Empty query set.
    let empty = VectorStore::empty(1).unwrap();
    assert!(engine.abs_above_theta(&empty, 0.1).entries.is_empty());
}

#[test]
fn abs_above_duplicate_probes_report_each_copy() {
    let p = VectorStore::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![-1.0, -1.0]]).unwrap();
    let q = VectorStore::from_rows(&[vec![2.0, 0.0]]).unwrap();
    let mut engine = Lemp::new(&p);
    let out = engine.abs_above_theta(&q, 1.9);
    let pairs = canonical_pairs(&out.entries);
    assert_eq!(pairs, vec![(0, 0), (0, 1), (0, 2)]);
}

#[test]
fn floored_topk_with_all_variants_on_duplicates() {
    // Duplicates straddling the floor: every exact variant must agree on
    // the *set* sizes (ties within equal scores may order differently).
    let p =
        VectorStore::from_rows(&[vec![3.0, 0.0], vec![3.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]])
            .unwrap();
    let q = VectorStore::from_rows(&[vec![1.0, 0.0]]).unwrap();
    for variant in exact_variants() {
        let mut engine = engine_for(&p, variant);
        let out = engine.row_top_k_with_floor(&q, 4, 2.0);
        assert_eq!(out.lists[0].len(), 2, "{}", variant.name());
        assert!(out.lists[0].iter().all(|i| i.score == 3.0), "{}", variant.name());
    }
}

#[test]
fn floor_between_negative_scores() {
    // All inner products negative; a negative floor must still rank and
    // filter correctly (Row-Top-k warm-up runs with negative θ′).
    let p = VectorStore::from_rows(&[vec![-1.0, 0.0], vec![-2.0, 0.0], vec![-3.0, 0.0]]).unwrap();
    let q = VectorStore::from_rows(&[vec![1.0, 0.0]]).unwrap();
    let mut engine = Lemp::new(&p);
    let out = engine.row_top_k_with_floor(&q, 3, -2.5);
    let ids: Vec<usize> = out.lists[0].iter().map(|i| i.id).collect();
    assert_eq!(ids, vec![0, 1], "keeps −1 and −2, drops −3");
}

#[test]
fn adaptive_degenerate_configurations_stay_exact() {
    use lemp::{AdaptiveConfig, BanditPolicy};
    let probes = GeneratorConfig::gaussian(150, 6, 1.0).generate(71);
    let queries = GeneratorConfig::gaussian(20, 6, 0.7).generate(72);
    let (expect, _) = Naive.above_theta(&queries, &probes, 0.8);
    for acfg in [
        // One context bin: the bandit cannot learn a t_b switch at all.
        AdaptiveConfig { theta_bins: 1, ..Default::default() },
        // Two arms only: LENGTH vs COORD(1).
        AdaptiveConfig { max_phi: 1, ..Default::default() },
        // Absurdly many bins: most stay empty.
        AdaptiveConfig { theta_bins: 64, ..Default::default() },
        // Pure random selection forever.
        AdaptiveConfig {
            policy: BanditPolicy::EpsilonGreedy { epsilon: 1.0, seed: 9 },
            ..Default::default()
        },
    ] {
        let mut engine = Lemp::new(&probes);
        let (out, report) = engine.above_theta_adaptive(&queries, 0.8, &acfg);
        assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect), "{acfg:?} diverged");
        assert_eq!(report.total_pulls(), out.stats.method_mix.total());
    }
}

#[test]
fn adaptive_handles_zero_and_single_probe_buckets() {
    use lemp::AdaptiveConfig;
    let p = VectorStore::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.5], vec![4.0, -1.0]]).unwrap();
    let q = VectorStore::from_rows(&[vec![1.0, 1.0], vec![0.0, 0.0]]).unwrap();
    let (expect, _) = Naive.above_theta(&q, &p, -0.5); // θ ≤ 0 reaches zero buckets
    let mut engine = Lemp::new(&p);
    let (out, _) = engine.above_theta_adaptive(&q, -0.5, &AdaptiveConfig::default());
    assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect));
    let (expect_k, _) = Naive.row_top_k(&q, &p, 2);
    let (out, _) = engine.row_top_k_adaptive(&q, 2, &AdaptiveConfig::default());
    assert!(topk_equivalent(&out.lists, &expect_k, 1e-9));
}
