//! Ground-truth agreement: every exact algorithm in the workspace must
//! return exactly the Naive result on randomized workloads spanning the
//! paper's data regimes (dense/sparse, low/high length skew), both problems,
//! several thresholds and k values.

use lemp::baselines::types::{canonical_pairs, topk_equivalent};
use lemp::baselines::{CoverTree, DualTree, Naive, TaIndex};
use lemp::data::synthetic::GeneratorConfig;
use lemp::linalg::VectorStore;
use lemp::{Lemp, LempVariant};

struct Regime {
    name: &'static str,
    queries: VectorStore,
    probes: VectorStore,
}

fn regimes() -> Vec<Regime> {
    vec![
        Regime {
            name: "dense low-skew (KDD-like)",
            queries: GeneratorConfig::gaussian(50, 12, 0.4).generate(1),
            probes: GeneratorConfig::gaussian(350, 12, 0.4).generate(2),
        },
        Regime {
            name: "dense high-skew (IE-SVD-like)",
            queries: GeneratorConfig::gaussian(50, 12, 1.5).generate(3),
            probes: GeneratorConfig::gaussian(350, 12, 4.4).generate(4),
        },
        Regime {
            name: "sparse non-negative (IE-NMF-like)",
            queries: GeneratorConfig::sparse(50, 12, 1.5, 0.36).generate(5),
            probes: GeneratorConfig::sparse(350, 12, 5.0, 0.36).generate(6),
        },
        Regime {
            name: "tiny dimension",
            queries: GeneratorConfig::gaussian(40, 2, 0.8).generate(7),
            probes: GeneratorConfig::gaussian(200, 2, 0.8).generate(8),
        },
    ]
}

/// Thresholds spanning near-empty to bulky result sets per regime.
fn thetas(queries: &VectorStore, probes: &VectorStore) -> Vec<f64> {
    [100, 1_000, 5_000]
        .into_iter()
        .filter_map(|t| lemp::data::calibrate::exact_theta(queries, probes, t))
        .collect()
}

#[test]
fn lemp_variants_match_naive_above_theta_across_regimes() {
    for regime in regimes() {
        for theta in thetas(&regime.queries, &regime.probes) {
            let (expect, _) = Naive.above_theta(&regime.queries, &regime.probes, theta);
            let expect = canonical_pairs(&expect);
            for variant in LempVariant::all() {
                if variant.is_approximate() {
                    continue;
                }
                let mut engine =
                    Lemp::builder().variant(variant).sample_size(6).build(&regime.probes);
                let out = engine.above_theta(&regime.queries, theta);
                assert_eq!(
                    canonical_pairs(&out.entries),
                    expect,
                    "{} on {} at theta {theta}",
                    variant.name(),
                    regime.name
                );
            }
        }
    }
}

#[test]
fn lemp_variants_match_naive_top_k_across_regimes() {
    for regime in regimes() {
        for k in [1usize, 4, 25] {
            let (expect, _) = Naive.row_top_k(&regime.queries, &regime.probes, k);
            for variant in LempVariant::all() {
                if variant.is_approximate() {
                    continue;
                }
                let mut engine =
                    Lemp::builder().variant(variant).sample_size(6).build(&regime.probes);
                let out = engine.row_top_k(&regime.queries, k);
                assert!(
                    topk_equivalent(&out.lists, &expect, 1e-9),
                    "{} on {} at k {k}",
                    variant.name(),
                    regime.name
                );
            }
        }
    }
}

#[test]
fn baselines_match_naive_across_regimes() {
    for regime in regimes() {
        let theta = thetas(&regime.queries, &regime.probes)[0];
        let (expect_above, _) = Naive.above_theta(&regime.queries, &regime.probes, theta);
        let expect_above = canonical_pairs(&expect_above);
        let (expect_topk, _) = Naive.row_top_k(&regime.queries, &regime.probes, 5);

        let ta = TaIndex::build(&regime.probes);
        let (got, _) = ta.above_theta(&regime.queries, theta);
        assert_eq!(canonical_pairs(&got), expect_above, "TA above on {}", regime.name);
        let (got, _) = ta.row_top_k(&regime.queries, 5);
        assert!(topk_equivalent(&got, &expect_topk, 1e-9), "TA topk on {}", regime.name);

        let tree = CoverTree::build(&regime.probes, 1.3);
        let (got, _) = tree.above_theta(&regime.queries, theta);
        assert_eq!(canonical_pairs(&got), expect_above, "Tree above on {}", regime.name);
        let (got, _) = tree.row_top_k(&regime.queries, 5);
        assert!(topk_equivalent(&got, &expect_topk, 1e-9), "Tree topk on {}", regime.name);

        let dt = DualTree::build(&regime.queries, &regime.probes, 1.3);
        let (got, _) = dt.above_theta(theta);
        assert_eq!(canonical_pairs(&got), expect_above, "D-Tree above on {}", regime.name);
        let (got, _) = dt.row_top_k(5);
        assert!(topk_equivalent(&got, &expect_topk, 1e-9), "D-Tree topk on {}", regime.name);
    }
}

#[test]
fn parallel_engine_matches_serial_across_variants() {
    let queries = GeneratorConfig::gaussian(60, 10, 1.0).generate(9);
    let probes = GeneratorConfig::gaussian(400, 10, 1.0).generate(10);
    let theta = lemp::data::calibrate::exact_theta(&queries, &probes, 500).unwrap();
    for variant in [LempVariant::L, LempVariant::LI, LempVariant::Ta, LempVariant::L2ap] {
        let mut serial = Lemp::builder().variant(variant).sample_size(6).build(&probes);
        let mut parallel =
            Lemp::builder().variant(variant).sample_size(6).threads(3).build(&probes);
        let a = serial.above_theta(&queries, theta);
        let b = parallel.above_theta(&queries, theta);
        assert_eq!(
            canonical_pairs(&a.entries),
            canonical_pairs(&b.entries),
            "{} above",
            variant.name()
        );
        let ta = serial.row_top_k(&queries, 7);
        let tb = parallel.row_top_k(&queries, 7);
        assert!(topk_equivalent(&ta.lists, &tb.lists, 1e-9), "{} topk", variant.name());
    }
}

#[test]
fn mf_trained_factors_roundtrip_through_lemp() {
    // End-to-end: ratings → factorization → retrieval, verified vs Naive.
    use lemp::data::mf::{synthetic_ratings, train, MfConfig};
    let (ratings, _) = synthetic_ratings(80, 60, 2500, 6, 0.2, 11);
    let model =
        train(&ratings, 80, 60, &MfConfig { rank: 8, epochs: 10, ..Default::default() }, 12);
    let (expect, _) = Naive.row_top_k(&model.users, &model.items, 5);
    let mut engine = Lemp::builder().sample_size(6).build(&model.items);
    let out = engine.row_top_k(&model.users, 5);
    assert!(topk_equivalent(&out.lists, &expect, 1e-9));
}
