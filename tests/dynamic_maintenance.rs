//! Property-based integration tests for dynamic probe maintenance: any
//! edit script leaves the engine exactly equivalent to a fresh build over
//! the surviving vectors, for both problems and across variants.

use lemp::baselines::types::{canonical_pairs, topk_equivalent};
use lemp::baselines::Naive;
use lemp::core::dynamic::DynamicLemp;
use lemp::core::RunConfig;
use lemp::linalg::VectorStore;
use lemp::{BucketPolicy, LempVariant};
use proptest::prelude::*;

/// One edit: insert a vector (length scale spread over three decades to
/// exercise all routing branches) or remove an id that may or may not be
/// live.
#[derive(Debug, Clone)]
enum Edit {
    Insert(Vec<f64>),
    Remove(u32),
}

fn edit_strategy(dim: usize) -> impl Strategy<Value = Edit> {
    prop_oneof![
        3 => (
            proptest::collection::vec(-1.0f64..1.0, dim),
            -2.0f64..2.0, // log10 length scale
        )
            .prop_map(|(mut v, log_scale)| {
                let s = 10f64.powf(log_scale);
                for x in &mut v {
                    *x *= s;
                }
                Edit::Insert(v)
            }),
        2 => (0u32..200).prop_map(Edit::Remove),
    ]
}

/// The surviving `(stable id, vector)` mirror an edit script produces.
fn apply_mirror(initial: &VectorStore, edits: &[Edit]) -> (Vec<u32>, VectorStore) {
    let mut alive: Vec<(u32, Vec<f64>)> =
        (0..initial.len()).map(|i| (i as u32, initial.vector(i).to_vec())).collect();
    let mut next_id = initial.len() as u32;
    for edit in edits {
        match edit {
            Edit::Insert(v) => {
                alive.push((next_id, v.clone()));
                next_id += 1;
            }
            Edit::Remove(id) => {
                alive.retain(|(a, _)| a != id);
            }
        }
    }
    let ids: Vec<u32> = alive.iter().map(|(id, _)| *id).collect();
    let rows: Vec<Vec<f64>> = alive.iter().map(|(_, v)| v.clone()).collect();
    let store = if rows.is_empty() {
        VectorStore::empty(initial.dim()).expect("dim > 0")
    } else {
        VectorStore::from_rows(&rows).expect("mirror rows are valid")
    };
    (ids, store)
}

fn small_store(dim: usize, n: usize, seed: u64) -> VectorStore {
    // Deterministic pseudo-random content without pulling a generator dep:
    // a simple LCG spread over [-2, 2] with varying row scales.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
    };
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let scale = 10f64.powf((i % 5) as f64 - 2.0);
            (0..dim).map(|_| scale * next()).collect()
        })
        .collect();
    VectorStore::from_rows(&rows).expect("valid rows")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edit_scripts_match_fresh_builds(
        n_initial in 1usize..60,
        dim in 1usize..6,
        edits in proptest::collection::vec(edit_strategy(4), 0..40),
        seed in 0u64..1000,
    ) {
        // Fix the edit dim to the sampled dim.
        let edits: Vec<Edit> = edits
            .into_iter()
            .map(|e| match e {
                Edit::Insert(v) => {
                    let mut v = v;
                    v.resize(dim, 0.25);
                    Edit::Insert(v)
                }
                other => other,
            })
            .collect();
        let initial = small_store(dim, n_initial, seed);
        let policy = BucketPolicy { min_bucket: 4, cache_bytes: 32 << 10, ..Default::default() };
        let config = RunConfig { sample_size: 4, ..Default::default() };
        let mut engine = DynamicLemp::new(&initial, policy, config);
        for edit in &edits {
            match edit {
                Edit::Insert(v) => {
                    engine.insert(v).expect("valid insert");
                }
                Edit::Remove(id) => {
                    let was_live = engine.contains(*id);
                    prop_assert_eq!(engine.remove(*id), was_live);
                }
            }
        }

        let (ids, mirror) = apply_mirror(&initial, &edits);
        prop_assert_eq!(engine.len(), mirror.len());

        let queries = small_store(dim, 8, seed + 1);
        let theta = 0.4;
        let got = engine.above_theta(&queries, theta);
        let (expect, _) = Naive.above_theta(&queries, &mirror, theta);
        let expect_pairs: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> =
                expect.iter().map(|e| (e.query, ids[e.probe as usize])).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(canonical_pairs(&got.entries), expect_pairs);

        let k = 3;
        let got = engine.row_top_k(&queries, k);
        let (expect, _) = Naive.row_top_k(&queries, &mirror, k);
        prop_assert!(topk_equivalent(&got.lists, &expect, 1e-9));

        // Rebuild must not change anything either.
        engine.rebuild();
        let got = engine.row_top_k(&queries, k);
        prop_assert!(topk_equivalent(&got.lists, &expect, 1e-9));
    }
}

#[test]
fn heavy_churn_with_every_variant_stays_exact() {
    let initial = small_store(6, 80, 3);
    let queries = small_store(6, 12, 4);
    for variant in LempVariant::all() {
        if variant.is_approximate() {
            continue;
        }
        let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
        let config = RunConfig { variant, sample_size: 4, ..Default::default() };
        let mut engine = DynamicLemp::new(&initial, policy, config);
        // interleave queries with edits: indexes must invalidate correctly
        for round in 0..4u64 {
            for i in 0..10 {
                engine.remove((round * 13 + i * 7) as u32 % engine.next_id());
            }
            for i in 0..10 {
                let scale = 10f64.powf((i % 3) as f64 - 1.0);
                let v: Vec<f64> = (0..6).map(|f| scale * ((i + f) as f64 * 0.37 - 1.0)).collect();
                engine.insert(&v).unwrap();
            }
            let (ids, mirror) = engine.live_vectors();
            let got = engine.above_theta(&queries, 0.8);
            let (expect, _) = Naive.above_theta(&queries, &mirror, 0.8);
            let expect_pairs: Vec<(u32, u32)> = {
                let mut v: Vec<(u32, u32)> =
                    expect.iter().map(|e| (e.query, ids[e.probe as usize])).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                canonical_pairs(&got.entries),
                expect_pairs,
                "{} diverged in round {round}",
                variant.name()
            );
        }
    }
}

#[test]
fn interleaved_queries_see_each_edit_immediately() {
    let initial = small_store(4, 20, 9);
    let queries = small_store(4, 5, 10);
    let mut engine = DynamicLemp::new(&initial, BucketPolicy::default(), RunConfig::default());
    let before = engine.row_top_k(&queries, 1);
    // Insert a vector that dominates every query's top-1 by sheer length.
    let id = engine.insert(&[1e4, 1e4, 1e4, 1e4]).unwrap();
    let after = engine.row_top_k(&queries, 1);
    for (q, (b, a)) in before.lists.iter().zip(&after.lists).enumerate() {
        assert!(
            a[0].id == id as usize || a[0].score >= b[0].score,
            "query {q} missed the dominating insert"
        );
    }
    // Remove it again: results return to the originals.
    engine.remove(id);
    let restored = engine.row_top_k(&queries, 1);
    assert!(topk_equivalent(&restored.lists, &before.lists, 1e-9));
}
