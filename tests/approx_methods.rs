//! Integration tests for the approximate methods on the paper's calibrated
//! dataset shapes: recall bounds at practical knob settings, exactness at
//! the knobs' maxima, and correct interaction with the exact LEMP engine.

use lemp::approx::recall::{pair_precision, pair_recall, topk_recall};
use lemp::approx::{
    centroid_row_top_k, AlshTransform, CentroidConfig, MipsTransform, PcaTree, PcaTreeConfig,
    SrpConfig, SrpLsh, SrpTables, SrpTablesConfig, XboxTransform,
};
use lemp::baselines::Naive;
use lemp::data::datasets::Dataset;
use lemp::linalg::{kernels, VectorStore};
use lemp::Lemp;

fn workload(scale: f64, seed: u64) -> (VectorStore, VectorStore) {
    let spec = Dataset::Netflix.spec().scaled(scale);
    let (q, p) = spec.generate(seed);
    (q, p)
}

#[test]
fn srp_reaches_high_recall_on_calibrated_data() {
    let (queries, probes) = workload(0.002, 21);
    let k = 10;
    let (truth, _) = Naive.row_top_k(&queries, &probes, k);
    let index = SrpLsh::build(&probes, &SrpConfig::default()).unwrap();
    let lists = index.row_top_k(&queries, k, 16 * k);
    let recall = topk_recall(&truth, &lists, 1e-9);
    assert!(recall >= 0.85, "SRP recall {recall} below 0.85 at 16k budget");
    // full budget: exact
    let lists = index.row_top_k(&queries, k, probes.len());
    assert_eq!(topk_recall(&truth, &lists, 1e-9), 1.0);
}

#[test]
fn pca_tree_reaches_high_recall_on_calibrated_data() {
    let (queries, probes) = workload(0.002, 22);
    let k = 10;
    let (truth, _) = Naive.row_top_k(&queries, &probes, k);
    let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
    let half = (tree.leaves() / 2).max(1);
    let lists = tree.row_top_k(&queries, k, half);
    let recall = topk_recall(&truth, &lists, 1e-9);
    // r = 50: projection margins carry little information (the curse of
    // dimensionality the PCA-tree papers acknowledge), so half the leaves
    // recover ~73% here — well above the 50% a random half would give.
    assert!(recall >= 0.65, "PCA-tree recall {recall} below 0.65 at half budget");
    let lists = tree.row_top_k(&queries, k, tree.leaves());
    assert_eq!(topk_recall(&truth, &lists, 1e-9), 1.0);
}

#[test]
fn centroid_method_composes_with_exact_lemp() {
    let (queries, probes) = workload(0.002, 23);
    let k = 5;
    let (truth, _) = Naive.row_top_k(&queries, &probes, k);
    // generous clustering: one cluster per ~8 queries
    let cfg =
        CentroidConfig { clusters: (queries.len() / 8).max(1), expand: 8, ..Default::default() };
    let out = centroid_row_top_k(&queries, &probes, k, &cfg).unwrap();
    let recall = topk_recall(&truth, &out.lists, 1e-9);
    // Netflix-like queries are NOT tightly clustered, so recall is modest;
    // what must hold is that it's far above random (k/n ≈ 14%) and exact
    // scores are returned for whatever is retrieved.
    assert!(recall >= 0.5, "centroid recall {recall} below 0.5");
    for (i, list) in out.lists.iter().enumerate() {
        for item in list {
            let exact = kernels::dot(queries.vector(i), probes.vector(item.id));
            assert!((item.score - exact).abs() < 1e-12);
        }
    }
}

#[test]
fn srp_tables_never_return_false_positives_above_theta() {
    // Use the banded tables as an Above-θ candidate generator: report a
    // pair iff the verified score clears θ. Precision must be exactly 1.
    let (queries, probes) = workload(0.0015, 24);
    let theta = {
        // calibrate θ to a few hundred true results
        let (entries, _) = Naive.above_theta(&queries, &probes, 0.0);
        let mut values: Vec<f64> = entries.iter().map(|e| e.value).collect();
        values.sort_by(|a, b| b.partial_cmp(a).unwrap());
        values[(300).min(values.len() - 1)]
    };
    let (truth, _) = Naive.above_theta(&queries, &probes, theta);
    let index = SrpTables::build(&probes, &SrpTablesConfig::default()).unwrap();
    let mut got = Vec::new();
    for i in 0..queries.len() {
        let q = queries.vector(i);
        // ask for all candidates above θ via a large k, filter by θ
        for item in index.query_top_k(q, probes.len()) {
            if item.score >= theta {
                got.push(lemp::Entry { query: i as u32, probe: item.id as u32, value: item.score });
            }
        }
    }
    assert_eq!(pair_precision(&truth, &got), 1.0, "approximate result contains a false pair");
    let recall = pair_recall(&truth, &got);
    assert!(recall >= 0.5, "banded-table Above-θ recall {recall} below 0.5");
}

#[test]
fn alsh_and_xbox_agree_on_the_argmax() {
    let (queries, probes) = workload(0.001, 25);
    let xbox = XboxTransform::fit(&probes).unwrap();
    let alsh = AlshTransform::fit(&probes, 0.83, 5).unwrap();
    let xp = xbox.transform_probes(&probes);
    let ap = alsh.transform_probes(&probes);
    let xq = xbox.transform_queries(&queries);
    let aq = alsh.transform_queries(&queries);
    for i in 0..queries.len().min(50) {
        let true_best = (0..probes.len())
            .max_by(|&a, &b| {
                queries
                    .dot_between(i, &probes, a)
                    .partial_cmp(&queries.dot_between(i, &probes, b))
                    .unwrap()
            })
            .unwrap();
        let xbox_best = (0..xp.len())
            .max_by(|&a, &b| {
                kernels::cosine(xq.vector(i), xp.vector(a))
                    .partial_cmp(&kernels::cosine(xq.vector(i), xp.vector(b)))
                    .unwrap()
            })
            .unwrap();
        let alsh_best = (0..ap.len())
            .min_by(|&a, &b| {
                kernels::dist_sq(aq.vector(i), ap.vector(a))
                    .partial_cmp(&kernels::dist_sq(aq.vector(i), ap.vector(b)))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(xbox_best, true_best, "query {i}: XBOX cosine argmax wrong");
        assert_eq!(alsh_best, true_best, "query {i}: ALSH NN argmax wrong");
    }
}

#[test]
fn approximate_and_exact_engines_share_inputs() {
    // The approx indexes and the exact engine must accept the same stores
    // and agree wherever the approx method claims exactness.
    let (queries, probes) = workload(0.001, 26);
    let k = 3;
    let mut engine = Lemp::builder().build(&probes);
    let exact = engine.row_top_k(&queries, k);
    let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
    let approx = tree.row_top_k(&queries, k, tree.leaves());
    assert!(lemp::baselines::types::topk_equivalent(&exact.lists, &approx, 1e-9));
}

#[test]
fn skewed_ie_lengths_do_not_break_transforms() {
    // IE-SVD lengths span orders of magnitude (CoV ≈ 4.4 on the probe
    // side); the XBOX slack term and ALSH rescaling must stay finite.
    let spec = Dataset::IeSvd.spec().scaled(0.001);
    let (queries, probes) = spec.generate(27);
    let xbox = XboxTransform::fit(&probes).unwrap();
    let tp = xbox.transform_probes(&probes);
    for j in 0..tp.len() {
        assert!(tp.vector(j).iter().all(|x| x.is_finite()));
        let l = kernels::norm(tp.vector(j));
        assert!((l - xbox.max_len()).abs() < 1e-6 * (1.0 + xbox.max_len()));
    }
    let index = SrpLsh::build(&probes, &SrpConfig::default()).unwrap();
    let lists = index.row_top_k(&queries, 5, probes.len());
    let (truth, _) = Naive.row_top_k(&queries, &probes, 5);
    assert_eq!(topk_recall(&truth, &lists, 1e-9), 1.0, "full budget must stay exact");
}
