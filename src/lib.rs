//! # lemp — fast retrieval of large entries in a matrix product
//!
//! A from-scratch Rust reproduction of **LEMP** (Teflioudi, Gemulla,
//! Mykytiuk: *"LEMP: Fast Retrieval of Large Entries in a Matrix Product"*,
//! SIGMOD 2015), including every baseline and substrate the paper's
//! evaluation depends on.
//!
//! Given two tall-and-skinny factor matrices (e.g. the user and item factors
//! of a recommender model), LEMP finds the *large* entries of their product
//! — all entries above a threshold ([`Lemp::above_theta`]) or the top-k per
//! row ([`Lemp::row_top_k`]) — orders of magnitude faster than computing the
//! product.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`](mod@core) | `lemp-core` | the LEMP engine: bucketization, LENGTH/COORD/INCR, tuner, adaptive selection, drivers |
//! | [`baselines`] | `lemp-baselines` | Naive, TA, cover-tree FastMKS (single + dual) |
//! | [`apss`] | `lemp-apss` | L2AP and BayesLSH-Lite cosine search |
//! | [`approx`] | `lemp-approx` | approximate MIPS: ALSH/XBOX transforms, SRP-LSH, PCA-tree, query centroids |
//! | [`data`] | `lemp-data` | Table-1-calibrated generators, SGD matrix factorization, IO, θ calibration |
//! | [`linalg`] | `lemp-linalg` | vector stores, kernels, top-k selection, statistics |
//! | [`store`] | `lemp-store` | durability: write-ahead log, snapshots, crash recovery for the dynamic engine |
//!
//! ## Example
//!
//! ```
//! use lemp::{Lemp, LempVariant};
//! use lemp::linalg::VectorStore;
//!
//! let probes = VectorStore::from_rows(&[
//!     vec![1.6, 0.6],
//!     vec![0.7, 2.7],
//!     vec![1.0, 2.8],
//! ]).unwrap();
//! let queries = VectorStore::from_rows(&[vec![3.2, -0.4]]).unwrap();
//!
//! let mut engine = Lemp::builder().variant(LempVariant::LI).build(&probes);
//! let top = engine.row_top_k(&queries, 1);
//! assert_eq!(top.lists[0][0].id, 0); // the action movie for the action fan
//! ```

#![warn(missing_docs)]

pub use lemp_approx as approx;
pub use lemp_apss as apss;
pub use lemp_baselines as baselines;
pub use lemp_core as core;
pub use lemp_data as data;
pub use lemp_linalg as linalg;
pub use lemp_store as store;

pub use lemp_core::{
    AboveThetaOutput, AdaptiveConfig, AdaptiveReport, AdaptiveSelector, BanditPolicy, BucketPolicy,
    DynamicLemp, Engine, Entry, ExecOptions, Lemp, LempBuilder, LempVariant, QueryKind, QueryPlan,
    QueryRequest, QueryResponse, QueryRows, RetrievalCounters, RunStats, Scratch, ShardedLemp,
    TopKOutput,
};
