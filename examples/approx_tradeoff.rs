//! Approximate MIPS: the recall/time trade-off of the paper's related work.
//!
//! The LEMP paper retrieves *exactly*; its related-work section (Sec. 5)
//! surveys approximate alternatives — ALSH \[15\], the Xbox Euclidean
//! transformation with trees \[16\], and query clustering \[17\] — that
//! trade recall for speed. This example puts all three (as implemented in
//! `lemp::approx`) next to the exact LEMP engine on a Netflix-like
//! workload and prints each method's knob sweep: time per query versus
//! Row-Top-10 recall.
//!
//! Run with: `cargo run --release --example approx_tradeoff`

use std::time::Instant;

use lemp::approx::{
    centroid_row_top_k, recall::topk_recall, CentroidConfig, PcaTree, PcaTreeConfig, SrpConfig,
    SrpLsh,
};
use lemp::data::datasets::Dataset;
use lemp::Lemp;

fn main() {
    // A laptop-sized slice of the Netflix-like dataset (Table 1 statistics).
    let spec = Dataset::Netflix.spec().scaled(0.004);
    let (queries, probes) = spec.generate(42);
    let k = 10;
    println!(
        "{}: {} queries × {} probes, r = {}, Row-Top-{k}\n",
        spec.name,
        queries.len(),
        probes.len(),
        spec.dim
    );

    // Exact ground truth (and the exact engine's time as the bar to beat).
    let start = Instant::now();
    let mut engine = Lemp::builder().build(&probes);
    let exact = engine.row_top_k(&queries, k);
    let exact_us = start.elapsed().as_micros() as f64 / queries.len() as f64;
    println!("exact LEMP-LI             {exact_us:>8.1} µs/query   recall 1.0000");

    // SRP-LSH: budget sweep (how many Hamming-nearest candidates to verify).
    let start = Instant::now();
    let srp = SrpLsh::build(&probes, &SrpConfig::default()).expect("valid probes");
    let build_ms = start.elapsed().as_millis();
    println!("\nSRP-LSH (128-bit signatures, built in {build_ms} ms):");
    for budget in [k, 4 * k, 16 * k, 64 * k] {
        let start = Instant::now();
        let lists = srp.row_top_k(&queries, k, budget);
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        let recall = topk_recall(&exact.lists, &lists, 1e-9);
        println!("  budget {budget:>4}            {us:>8.1} µs/query   recall {recall:.4}");
    }

    // PCA-tree: leaf-budget sweep.
    let start = Instant::now();
    let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).expect("valid probes");
    let build_ms = start.elapsed().as_millis();
    println!("\nPCA-tree ({} leaves, built in {build_ms} ms):", tree.leaves());
    for budget in [1, 2, 4, tree.leaves()] {
        let start = Instant::now();
        let lists = tree.row_top_k(&queries, k, budget);
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        let recall = topk_recall(&exact.lists, &lists, 1e-9);
        println!(
            "  {budget:>3} of {} leaves       {us:>8.1} µs/query   recall {recall:.4}",
            tree.leaves()
        );
    }

    // Query centroids: cluster-count sweep (the \[17\] + LEMP combination).
    println!("\nquery centroids + exact LEMP per centroid:");
    for clusters in [8, 32, 128] {
        let cfg = CentroidConfig { clusters, ..Default::default() };
        let start = Instant::now();
        let out = centroid_row_top_k(&queries, &probes, k, &cfg).expect("valid config");
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        let recall = topk_recall(&exact.lists, &out.lists, 1e-9);
        println!(
            "  {clusters:>4} clusters ×{} cand  {us:>8.1} µs/query   recall {recall:.4}",
            out.candidates_per_centroid
        );
    }

    println!(
        "\nEvery method verifies candidates exactly — reported scores are true\n\
         inner products; only candidate membership (recall) is approximate."
    );
}
