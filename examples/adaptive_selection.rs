//! Online (bandit) algorithm selection — the paper's Sec. 4.4 outlook.
//!
//! The sample-based tuner measures a handful of queries up front and fixes
//! per-bucket parameters; the adaptive driver instead learns *while
//! retrieving*: each (bucket, local-threshold-bin) is a multi-armed bandit
//! over {LENGTH, COORD/INCR(φ)}. Every arm is exact, so the answer is
//! always the same — the bandit only decides how fast it arrives.
//!
//! This example runs both on a skewed IE-SVDᵀ workload, verifies the
//! results agree, and prints what one bucket's bandits learned: which arm
//! each θ_b bin converged to, which is the learned analogue of the tuner's
//! `t_b` switch point.
//!
//! Run with: `cargo run --release --example adaptive_selection`

use std::time::Instant;

use lemp::baselines::types::topk_equivalent;
use lemp::data::datasets::Dataset;
use lemp::{AdaptiveConfig, BanditPolicy, Lemp, LempVariant};

fn main() {
    let spec = Dataset::IeSvdT.spec().scaled(0.008);
    println!("dataset {}: {} queries × {} probes", spec.name, spec.m, spec.n);
    let (queries, probes) = spec.generate(11);
    let k = 10;

    // Baseline: the paper's sample-based tuner (Sec. 4.4).
    let t = Instant::now();
    let mut tuned = Lemp::builder().variant(LempVariant::LI).build(&probes);
    let tuned_out = tuned.row_top_k(&queries, k);
    let tuned_secs = t.elapsed().as_secs_f64();

    // Adaptive: UCB1 bandits, LI flavor (LENGTH + INCR arms).
    let acfg = AdaptiveConfig { policy: BanditPolicy::Ucb1 { c: 1.0 }, ..Default::default() };
    let t = Instant::now();
    let mut adaptive = Lemp::new(&probes);
    let (adaptive_out, report) = adaptive.row_top_k_adaptive(&queries, k, &acfg);
    let adaptive_secs = t.elapsed().as_secs_f64();

    assert!(
        topk_equivalent(&adaptive_out.lists, &tuned_out.lists, 1e-9),
        "exactness invariant: adaptive must return the tuned result"
    );
    println!("\nRow-Top-{k}: results identical (exactness holds under any policy)");
    println!("  tuned LEMP-LI : {:7.1} ms", tuned_secs * 1e3);
    println!("  adaptive UCB1 : {:7.1} ms", adaptive_secs * 1e3);
    println!(
        "  method mix    : tuned {:.0}% LENGTH — adaptive {:.0}% LENGTH",
        100.0 * tuned_out.stats.method_mix.length_share(),
        100.0 * adaptive_out.stats.method_mix.length_share(),
    );

    // Show the learning state of the busiest bucket: per θ_b bin, the arm
    // the bandit would exploit now. Low bins should prefer LENGTH, high
    // bins a coordinate method — the bandit's version of the tuner's t_b.
    let busiest = report
        .buckets
        .iter()
        .enumerate()
        .max_by_key(|(_, bins)| {
            bins.iter().flat_map(|b| b.arms.iter()).map(|a| a.pulls).sum::<u64>()
        })
        .map(|(b, _)| b)
        .unwrap_or(0);
    println!("\nlearned policy of bucket {busiest} (the busiest one):");
    println!("  {:>14}  {:>7}  {:<12}  per-arm pulls", "θ_b bin", "pulls", "exploits");
    for bin in &report.buckets[busiest] {
        let pulls: u64 = bin.arms.iter().map(|a| a.pulls).sum();
        let exploit = match bin.best_arm {
            Some(a) => report.arm_names[a].clone(),
            None => "—".to_string(),
        };
        let detail: Vec<String> = bin
            .arms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pulls > 0)
            .map(|(i, a)| format!("{}×{}", report.arm_names[i], a.pulls))
            .collect();
        let range = format!("[{:.2}, {:.2})", bin.lo, bin.hi);
        println!("  {range:>14}  {pulls:>7}  {exploit:<12}  {}", detail.join("  "));
    }

    // Warm reuse: a long-lived service keeps the selector across calls, so
    // the second batch starts from the learned state instead of exploring
    // from scratch.
    let mut selector = adaptive.adaptive_selector(&acfg);
    let t = Instant::now();
    let cold = adaptive.row_top_k_adaptive_with(&queries, k, &mut selector);
    let cold_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = adaptive.row_top_k_adaptive_with(&queries, k, &mut selector);
    let warm_secs = t.elapsed().as_secs_f64();
    assert!(topk_equivalent(&warm.lists, &cold.lists, 1e-9));
    println!(
        "\nwarm reuse of one selector: first batch {:.1} ms, second batch {:.1} ms \
         ({} total pulls recorded)",
        cold_secs * 1e3,
        warm_secs * 1e3,
        selector.total_pulls()
    );
}
