//! Dynamic catalogs: recommending against a probe set that churns.
//!
//! The paper preprocesses a static item matrix, but a production
//! recommender's catalog changes continuously — titles launch, titles are
//! delisted. This example drives [`DynamicLemp`] through a day of catalog
//! churn: every "hour" some items are removed, new ones are inserted, and
//! the same user cohort is re-queried. Results are cross-checked against a
//! from-scratch engine build each round, and the engine is compacted once
//! fragmentation (undersized buckets from incremental edits) crosses a
//! threshold.
//!
//! Run with: `cargo run --release --example dynamic_catalog`
//!
//! [`DynamicLemp`]: lemp::core::dynamic::DynamicLemp

use lemp::baselines::types::{canonical_pairs, topk_equivalent};
use lemp::core::dynamic::DynamicLemp;
use lemp::core::RunConfig;
use lemp::data::datasets::Dataset;
use lemp::{BucketPolicy, Lemp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let spec = Dataset::Kdd.spec().scaled(0.002);
    let (users, items) = spec.generate(7);
    let k = 5;
    let mut rng = StdRng::seed_from_u64(99);

    let mut engine = DynamicLemp::new(&items, BucketPolicy::default(), RunConfig::default());
    println!(
        "catalog: {} items (r = {}), cohort: {} users, top-{k} per user\n",
        engine.len(),
        engine.dim(),
        users.len()
    );

    for hour in 1..=8 {
        // Churn: delist ~3% of live items, launch ~4% new ones.
        let mut removed = 0;
        let target = engine.len() * 3 / 100;
        while removed < target {
            let id = rng.random_range(0..engine.next_id());
            if engine.remove(id) {
                removed += 1;
            }
        }
        let launches = engine.len() * 4 / 100;
        for _ in 0..launches {
            let item: Vec<f64> = (0..engine.dim())
                .map(|_| 0.4 * lemp::data::rng::standard_normal(&mut rng))
                .collect();
            engine.insert(&item).expect("valid item vector");
        }

        // Query the live catalog.
        let top = engine.row_top_k(&users, k);
        let answered = top.lists.iter().filter(|l| !l.is_empty()).count();

        // Cross-check against a cold build over the same live vectors.
        let (ids, live) = engine.live_vectors();
        let mut cold = Lemp::builder().build(&live);
        let cold_top = cold.row_top_k(&users, k);
        assert!(
            topk_equivalent(&top.lists, &cold_top.lists, 1e-9),
            "hour {hour}: dynamic and cold-build results diverge"
        );
        let cold_above = cold.above_theta(&users, 1.0);
        let mut expected: Vec<(u32, u32)> =
            cold_above.entries.iter().map(|e| (e.query, ids[e.probe as usize])).collect();
        expected.sort_unstable();
        let above = engine.above_theta(&users, 1.0);
        assert_eq!(canonical_pairs(&above.entries), expected, "hour {hour}: Above-θ diverges");

        println!(
            "hour {hour}: -{removed} +{launches} items → {} live, {} buckets, \
             fragmentation {:.2}, {answered}/{} users answered",
            engine.len(),
            engine.bucket_count(),
            engine.fragmentation(),
            users.len()
        );

        // Compact when incremental edits have fragmented the bucketization.
        if engine.fragmentation() > 0.3 {
            engine.rebuild();
            println!(
                "        compacted → {} buckets, fragmentation {:.2}",
                engine.bucket_count(),
                engine.fragmentation()
            );
        }
    }

    println!("\nall hourly results matched a cold engine build — maintenance is exact.");
}
