//! A tour of the nine LEMP bucket-method variants (Fig. 7 in miniature).
//!
//! Runs every variant of the engine on the same scaled IE-SVD workload and
//! prints total time and average candidate-set size per query — the two
//! measurements the paper's Tables 5/6 report — so the relative behaviour
//! (LENGTH cheap but candidate-heavy, INCR pruning hardest among the fast
//! methods, L2AP pruning hardest overall but slower, BLSH ≈ LENGTH plus
//! overhead) is visible on a laptop in seconds.
//!
//! Run with: `cargo run --release --example variants_tour`

use std::time::Instant;

use lemp::baselines::types::canonical_pairs;
use lemp::baselines::Naive;
use lemp::data::calibrate;
use lemp::data::datasets::Dataset;
use lemp::{Lemp, LempVariant};

fn main() {
    let spec = Dataset::IeSvd.spec().scaled(0.004);
    println!("dataset {}: {} queries × {} probes", spec.name, spec.m, spec.n);
    let (queries, probes) = spec.generate(5);
    let theta =
        calibrate::sampled_theta(&queries, &probes, 3_000, 150_000, 9).expect("calibration");
    println!("θ = {theta:.4} (≈ @3k recall level)\n");

    let (truth, naive_counters) = Naive.above_theta(&queries, &probes, theta);
    let truth_pairs = canonical_pairs(&truth);
    println!("{:<10} {:>9} {:>12} {:>8}  note", "variant", "time", "|C|/query", "recall");
    println!(
        "{:<10} {:>9} {:>12} {:>8}  full product",
        "Naive",
        format!("{:.0?}", std::time::Duration::from_nanos(naive_counters.retrieval_ns)),
        format!("{:.0}", naive_counters.candidates_per_query()),
        "1.00"
    );

    for variant in LempVariant::all() {
        let t = Instant::now();
        let mut engine = Lemp::builder().variant(variant).build(&probes);
        let out = engine.above_theta(&queries, theta);
        let elapsed = t.elapsed();
        let got = canonical_pairs(&out.entries);
        let found = truth_pairs.iter().filter(|p| got.binary_search(p).is_ok()).count();
        let recall =
            if truth_pairs.is_empty() { 1.0 } else { found as f64 / truth_pairs.len() as f64 };
        let note = if variant.is_approximate() { "approximate (ε = 0.03)" } else { "exact" };
        println!(
            "{:<10} {:>9} {:>12} {:>8}  {}",
            variant.name().trim_start_matches("LEMP-"),
            format!("{elapsed:.0?}"),
            format!("{:.1}", out.stats.counters.candidates_per_query()),
            format!("{recall:.2}"),
            note
        );
        if !variant.is_approximate() {
            assert_eq!(got, truth_pairs, "{} must be exact", variant.name());
        }
    }
}
