//! Open information extraction scenario: retrieve all high-confidence facts
//! from a factorized argument–pattern matrix (the paper's IE-NMF workload).
//!
//! Riedel et al. factorize a binary matrix of (subject, object) arguments ×
//! verbal patterns; large entries of the reconstructed product are predicted
//! facts. This example generates NMF-like factors with the statistics of the
//! paper's IE-NMF dataset (Table 1: sparse, non-negative, extreme length
//! skew — CoV 5.53 on the probe side) and solves Above-θ at a θ calibrated
//! to a target result size, exactly like the paper's @recall-level
//! experiments.
//!
//! The second half switches to SVD factors (signed values) and uses
//! `abs_above_theta` to retrieve *both* ends of the confidence scale: the
//! paper's intro motivates exactly this — matrix factorization is used "to
//! predict additional facts, **spot unlikely facts**, and reason about
//! verbal phrases". Strongly negative entries are the unlikely facts.
//!
//! Run with: `cargo run --release --example open_ie`

use std::time::Instant;

use lemp::baselines::types::canonical_pairs;
use lemp::baselines::Naive;
use lemp::data::calibrate;
use lemp::data::datasets::Dataset;
use lemp::{Lemp, LempVariant};

fn main() {
    // IE-NMF at 1/200 of the paper's size: ~3.9K patterns × 660 arguments.
    let spec = Dataset::IeNmf.spec().scaled(0.005);
    println!(
        "dataset {} (scaled): {} queries × {} probes, r = {}",
        spec.name, spec.m, spec.n, spec.dim
    );
    let (queries, probes) = spec.generate(11);

    // Calibrate θ so that ≈ 2000 facts qualify (an @2k recall level).
    let target = 2_000;
    let theta = calibrate::sampled_theta(&queries, &probes, target, 200_000, 3)
        .expect("valid calibration target");
    println!("calibrated θ = {theta:.4} for ≈ {target} high-confidence facts");

    // LEMP-LI vs naive.
    let t = Instant::now();
    let mut engine = Lemp::builder().variant(LempVariant::LI).build(&probes);
    let out = engine.above_theta(&queries, theta);
    let lemp_time = t.elapsed();

    let t = Instant::now();
    let (naive_entries, _) = Naive.above_theta(&queries, &probes, theta);
    let naive_time = t.elapsed();

    assert_eq!(
        canonical_pairs(&out.entries),
        canonical_pairs(&naive_entries),
        "LEMP and Naive disagree"
    );

    println!("\nretrieved {} predicted facts:", out.entries.len());
    let mut strongest = out.entries.clone();
    strongest.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap());
    for e in strongest.iter().take(5) {
        println!("  pattern {:>5} × argument {:>5} (confidence {:.3})", e.query, e.probe, e.value);
    }

    println!("\ntimings:");
    println!("  naive: {naive_time:.2?}  ({} inner products)", queries.len() * probes.len());
    println!(
        "  LEMP : {lemp_time:.2?}  ({} candidates, {:.1} per query)",
        out.stats.counters.candidates,
        out.stats.counters.candidates_per_query()
    );
    println!(
        "  speedup {:.1}x — length skew lets LEMP prune most buckets outright",
        naive_time.as_secs_f64() / lemp_time.as_secs_f64()
    );

    // ── Part 2: unlikely facts via |Above-θ| on signed SVD factors ──────
    // NMF factors are non-negative, so every predicted confidence is ≥ 0;
    // spotting *unlikely* facts needs the signed SVD factorization.
    let spec = Dataset::IeSvd.spec().scaled(0.005);
    println!("\ndataset {} (scaled): {} queries × {} probes", spec.name, spec.m, spec.n);
    let (queries, probes) = spec.generate(23);
    let theta = calibrate::sampled_theta(&queries, &probes, 1_000, 200_000, 5)
        .expect("valid calibration target");

    let mut engine = Lemp::builder().variant(LempVariant::LI).build(&probes);
    let out = engine.abs_above_theta(&queries, theta);
    let likely = out.entries.iter().filter(|e| e.value > 0.0).count();
    let unlikely = out.entries.len() - likely;
    println!("|entry| ≥ {theta:.4}: {likely} high-confidence facts, {unlikely} unlikely facts");
    let mut most_unlikely: Vec<_> = out.entries.iter().filter(|e| e.value < 0.0).collect();
    most_unlikely.sort_by(|a, b| a.value.partial_cmp(&b.value).unwrap());
    for e in most_unlikely.iter().take(3) {
        println!(
            "  pattern {:>5} × argument {:>5} is contradicted (score {:.3})",
            e.query, e.probe, e.value
        );
    }
}
