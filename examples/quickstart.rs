//! Quickstart: the paper's Fig. 1 example, end to end.
//!
//! A tiny recommender model with two latent factors (roughly "action" and
//! "romance"), four users and five movies. We retrieve (a) all predicted
//! ratings above a threshold and (b) the top-2 movies per user, and check
//! LEMP against the naive full product.
//!
//! Run with: `cargo run --release --example quickstart`

use lemp::baselines::Naive;
use lemp::linalg::VectorStore;
use lemp::{Lemp, LempVariant};

fn main() {
    // Rows of QT: one factor vector per user (Fig. 1b).
    let users = VectorStore::from_rows(&[
        vec![3.2, -0.4], // Adam: action fan
        vec![3.1, -0.2], // Bob
        vec![0.0, 1.8],  // Charlie: romance fan
        vec![-0.4, 1.9], // Dennis
    ])
    .expect("well-formed user factors");
    // Columns of P: one factor vector per movie.
    let movie_names = ["Die Hard", "Taken", "Twilight", "Amelie", "Titanic"];
    let movies = VectorStore::from_rows(&[
        vec![1.6, 0.6],
        vec![1.3, 0.8],
        vec![0.7, 2.7],
        vec![1.0, 2.8],
        vec![0.4, 2.2],
    ])
    .expect("well-formed movie factors");

    // Build the engine once over the probe side; reuse it for both problems.
    let mut engine = Lemp::builder().variant(LempVariant::LI).build(&movies);

    // Problem 1 (Above-θ): all predicted ratings ≥ 3.8.
    let theta = 3.8;
    let above = engine.above_theta(&users, theta);
    println!("predictions ≥ {theta}:");
    let mut entries = above.entries.clone();
    entries.sort_by_key(|e| (e.query, e.probe));
    for e in &entries {
        println!("  user {} × {:<8} = {:.2}", e.query, movie_names[e.probe as usize], e.value);
    }

    // Problem 2 (Row-Top-k): the two best movies per user.
    let top = engine.row_top_k(&users, 2);
    println!("\ntop-2 recommendations:");
    for (u, list) in top.lists.iter().enumerate() {
        let picks: Vec<String> =
            list.iter().map(|s| format!("{} ({:.2})", movie_names[s.id], s.score)).collect();
        println!("  user {u}: {}", picks.join(", "));
    }

    // Sanity: LEMP agrees with the naive full product.
    let (naive_entries, _) = Naive.above_theta(&users, &movies, theta);
    assert_eq!(above.entries.len(), naive_entries.len());
    println!("\nLEMP found the same {} entries as the naive full product.", naive_entries.len());
    println!(
        "stats: {} buckets, {} candidates for {} queries",
        above.stats.bucket_count, above.stats.counters.candidates, above.stats.counters.queries
    );
}
