//! Streaming retrieval: bounded-memory Above-θ over a large query matrix.
//!
//! The open-IE workload of the paper asks for *all* high-confidence facts
//! — at permissive thresholds that result set dwarfs the factor matrices.
//! This example runs the chunked driver over an IE-SVD-like dataset,
//! writing each chunk's entries straight to a CSV file instead of
//! accumulating them, and reports the peak in-memory entry count next to
//! the total written. A monolithic run validates the output.
//!
//! Run with: `cargo run --release --example streaming_export`

use lemp::baselines::export::{read_entries_csv, write_entries_csv};
use lemp::baselines::types::canonical_pairs;
use lemp::data::datasets::Dataset;
use lemp::Lemp;

fn main() {
    let spec = Dataset::IeSvd.spec().scaled(0.004);
    let (queries, probes) = spec.generate(11);
    let theta = 2.0;
    let chunk_size = 256;
    println!(
        "{}: {} queries × {} probes, θ = {theta}, chunks of {chunk_size}\n",
        spec.name,
        queries.len(),
        probes.len()
    );

    let path = std::env::temp_dir().join(format!("lemp-streaming-{}.csv", std::process::id()));
    let file = std::fs::File::create(&path).expect("writable temp dir");
    let mut writer = std::io::BufWriter::new(file);

    // Stream: each chunk's entries go to disk, memory stays bounded.
    use std::io::Write;
    writeln!(writer, "query,probe,value").unwrap();
    let mut engine = Lemp::builder().build(&probes);
    let mut total = 0usize;
    let mut peak_in_memory = 0usize;
    let stats = engine.above_theta_chunked(&queries, theta, chunk_size, |entries| {
        peak_in_memory = peak_in_memory.max(entries.len());
        for e in entries {
            writeln!(writer, "{},{},{:?}", e.query, e.probe, e.value).unwrap();
        }
        total += entries.len();
    });
    writer.flush().unwrap();

    println!("wrote {total} entries to {}", path.display());
    println!(
        "peak in-memory entries: {peak_in_memory} (vs {total} total — {:.1}× smaller)",
        total as f64 / peak_in_memory.max(1) as f64
    );
    println!(
        "stats: {} candidates/query, {} buckets, {} lazily built indexes, {:.3}s total",
        stats.counters.candidates_per_query() as u64,
        stats.bucket_count,
        stats.indexes_built,
        stats.counters.total_seconds()
    );

    // Validate against a monolithic run through the export round-trip.
    let monolithic = engine.above_theta(&queries, theta);
    let streamed = read_entries_csv(std::fs::File::open(&path).expect("file just written"))
        .expect("well-formed csv");
    assert_eq!(
        canonical_pairs(&streamed),
        canonical_pairs(&monolithic.entries),
        "streamed and monolithic results differ"
    );
    println!("\nstreamed output matches the monolithic run entry-for-entry.");

    // The same writers serve monolithic results too.
    let mut buf = Vec::new();
    write_entries_csv(&mut buf, &monolithic.entries).unwrap();
    println!("(export::write_entries_csv produced {} bytes for the same result)", buf.len());

    std::fs::remove_file(&path).ok();
}
