//! Recommender-system scenario: the paper's motivating Netflix workload.
//!
//! Two parts:
//!
//! 1. **Provenance** — the full pipeline behind the paper's collaborative
//!    filtering datasets: synthetic clustered/popularity-skewed ratings →
//!    SGD matrix factorization with L2 regularization → Row-Top-k retrieval
//!    on the trained factors, verified identical to the naive full product.
//! 2. **Performance** — Row-Top-k on factor matrices calibrated to the
//!    paper's Netflix statistics (Table 1: 17 770 items, r = 50, length CoV
//!    0.43/0.72), where LEMP's bucket pruning shows the speedups the paper
//!    reports.
//!
//! Run with: `cargo run --release --example recommender`

use std::time::Instant;

use lemp::baselines::types::topk_equivalent;
use lemp::baselines::Naive;
use lemp::data::mf::{synthetic_ratings_clustered, train, MfConfig};
use lemp::data::synthetic::GeneratorConfig;
use lemp::linalg::stats;
use lemp::{Lemp, LempVariant};

fn main() {
    // ---- Part 1: train a model, retrieve, verify exactness -------------
    let users = 2_000;
    let items = 1_500;
    let k = 10;
    println!("== part 1: matrix-factorization provenance ==");
    println!("generating {} clustered, popularity-skewed ratings…", users * 25);
    let (mut ratings, _) =
        synthetic_ratings_clustered(users, items, users * 25, 50, 20, 0.5, 0.7, 0.3, 2.5, 42);
    // Center the ratings: the global mean lives outside the factors, as in
    // real recommender pipelines.
    let mean = ratings.iter().map(|r| r.value).sum::<f64>() / ratings.len() as f64;
    for r in &mut ratings {
        r.value -= mean;
    }
    let cfg = MfConfig { rank: 50, epochs: 12, lambda: 0.1, ..MfConfig::default() };
    let model = train(&ratings, users, items, &cfg, 7);
    println!(
        "trained rank-{} factors: RMSE {:.3}, item-length CoV {:.2}",
        cfg.rank,
        model.rmse(&ratings),
        stats::cov(&model.items.lengths())
    );

    let mut engine = Lemp::builder().variant(LempVariant::LI).build(&model.items);
    let out = engine.row_top_k(&model.users, k);
    let (naive_lists, _) = Naive.row_top_k(&model.users, &model.items, k);
    assert!(topk_equivalent(&out.lists, &naive_lists, 1e-9), "LEMP and Naive disagree");
    println!("top-{k} lists verified identical to the naive full product");
    println!("sample recommendations (predicted rating = global mean + qᵀp):");
    for u in 0..3 {
        let recs: Vec<String> = out.lists[u]
            .iter()
            .take(3)
            .map(|s| format!("item {} ({:.2})", s.id, mean + s.score))
            .collect();
        println!("  user {u}: {}", recs.join(", "));
    }

    // ---- Part 2: Netflix-calibrated factors at full item count ---------
    println!("\n== part 2: Netflix-calibrated retrieval (Table 1 statistics) ==");
    let probes = GeneratorConfig::gaussian(17_770, 50, 0.72).generate(1);
    let queries = GeneratorConfig::gaussian(8_000, 50, 0.43).generate(2);
    println!("{} queries × {} items, r = 50", queries.len(), probes.len());
    for k in [1usize, 10] {
        let t = Instant::now();
        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&probes);
        let out = engine.row_top_k(&queries, k);
        let lemp_t = t.elapsed();

        let t = Instant::now();
        let (naive_lists, naive_counters) = Naive.row_top_k(&queries, &probes, k);
        let naive_t = t.elapsed();

        assert!(topk_equivalent(&out.lists, &naive_lists, 1e-9));
        println!(
            "k={k:>2}: naive {naive_t:>7.2?} ({} dots)  LEMP {lemp_t:>7.2?} \
             ({:.0} candidates/query, {} buckets)  speedup {:.1}x",
            naive_counters.candidates,
            out.stats.counters.candidates_per_query(),
            out.stats.bucket_count,
            naive_t.as_secs_f64() / lemp_t.as_secs_f64()
        );
    }
    println!(
        "\n(The paper reports 6.7x over naive for Row-Top-1 on the real Netflix factors \
         at 480k queries; speedups grow with the query count as tuning amortizes.)"
    );
}
