//! Minimal in-tree stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the API surface this workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` and multiple
//!   `#[test] fn name(pat in strategy, ...)` items),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, ranges as strategies,
//!   tuples of strategies, [`collection::vec`], and [`Just`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! the generated inputs verbatim. Generation is deterministic — each test
//! function derives its RNG seed from its own name, so failures reproduce
//! exactly on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};

/// Per-test configuration (`ProptestConfig::with_cases(n)`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

/// The random source handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner; the seed is derived from the test name.
    pub fn new(seed: u64) -> Self {
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// Sample a value from a uniform range.
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.random_range(range)
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of type `Self::Value`.
///
/// Object-safe (generation takes a concrete [`TestRunner`]) so strategies can
/// be boxed for [`prop_oneof!`].
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns for it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        (**self).generate(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Clone + std::fmt::Debug,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.sample(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + Clone + std::fmt::Debug,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.sample(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Build from `(weight, strategy)` arms; weights need not be normalized.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = runner.sample(0..total);
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(runner);
            }
            pick -= *w;
        }
        unreachable!("weights sum mismatch")
    }
}

pub mod collection {
    //! Strategies for collections (`proptest::collection::vec`).

    use super::{Strategy, TestRunner};

    /// Sizes acceptable to [`vec`]: a fixed `usize`, `a..b`, or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// The `proptest::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.sample(self.size.lo..=self.size.hi_incl);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Box a strategy for use in [`prop_oneof!`] arms.
pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Drive one proptest-style test: generate `config.cases` inputs from
/// `strategies` and run `case` on each, panicking with the inputs on the
/// first failure. Rejections (`prop_assume!`) retry, up to a bounded number
/// of attempts. Called by the expansion of [`proptest!`].
pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategies: S, mut case: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = seed_from_name(name);
    let mut runner = TestRunner::new(seed);
    let mut ran = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while ran < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest '{name}': too many rejected cases ({attempts} attempts for {} cases)",
                config.cases
            );
        }
        let values = strategies.generate(&mut runner);
        let described = format!("{values:?}");
        match case(values) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed on case {ran} (seed {seed}):\n{msg}\ninputs: {described}");
            }
        }
    }
}

/// Derive a stable 64-bit seed from a test's module path and name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right` at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&($left), &($right));
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right` ({}) at {}:{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                file!(),
                line!(),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        if *left == *right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right` at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::box_strategy($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::box_strategy($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::proptest!(@run config, $name, ($($arg in $strat),+), $body);
            }
        )*
    };

    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };

    (@run $config:ident, $name:ident, ($($arg:pat in $strat:expr),+), $body:block) => {{
        let strategies = ($($crate::box_strategy($strat),)+);
        $crate::run_cases(
            &$config,
            concat!(module_path!(), "::", stringify!($name)),
            strategies,
            |values| {
                let ($($arg,)+) = values;
                $body
                Ok(())
            },
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn maps_and_flat_maps_compose(
            v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0i32..3, n..=n)),
            s in (0u32..3).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(s % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![2 => 0i32..1, 1 => 10i32..11]) {
            prop_assert!(x == 0 || x == 10);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
