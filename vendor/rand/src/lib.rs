//! Minimal in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.9-series API), covering exactly the surface this workspace uses:
//!
//! * [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`]
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`rngs::StdRng`]
//!
//! The build environment has no network access to crates.io, so this shim is
//! compiled in as a `rand` path dependency in `[workspace.dependencies]`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a deterministic,
//! high-quality generator, but **not** the ChaCha12 generator the real crate
//! uses. Anything depending on the exact stream (golden values) must derive
//! them from this implementation, which is stable across platforms and
//! releases of this workspace.

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` (the stand-in for the
/// real crate's `StandardUniform` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer / float types that support uniform sampling from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "cannot sample empty range");
                let span = (high_excl as i128 - low as i128) as u128;
                // Lemire-style rejection sampling to avoid modulo bias.
                let zone = u128::from(u64::MAX) + 1 - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        assert!(low < high_excl, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = low + u * (high_excl - low);
        // `low + u * span` can round up to the excluded endpoint when the
        // range is narrow relative to its magnitude.
        if v >= high_excl {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        assert!(low < high_excl, "cannot sample empty range");
        let u = f32::sample(rng);
        let v = low + u * (high_excl - low);
        if v >= high_excl {
            low
        } else {
            v
        }
    }
}

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                if high < <$t>::MAX {
                    <$t>::sample_range(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_range(rng, low - 1, high).wrapping_add(1)
                } else {
                    // Full domain.
                    <$t as Standard>::sample(rng)
                }
            }
        }
    )*};
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i16
    }
}

impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i8
    }
}

impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl_sample_range_inclusive_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng` (0.9 naming).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = sm.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_same_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same < 4);
        }

        #[test]
        fn unit_interval_f64() {
            let mut rng = StdRng::seed_from_u64(7);
            let mut sum = 0.0;
            for _ in 0..10_000 {
                let x: f64 = rng.random();
                assert!((0.0..1.0).contains(&x));
                sum += x;
            }
            let mean = sum / 10_000.0;
            assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        }

        #[test]
        fn range_sampling_in_bounds_and_covers() {
            let mut rng = StdRng::seed_from_u64(9);
            let mut seen = [false; 10];
            for _ in 0..1000 {
                let i = rng.random_range(0..10usize);
                seen[i] = true;
            }
            assert!(seen.iter().all(|&b| b));
            for _ in 0..1000 {
                let i = rng.random_range(3..=5u32);
                assert!((3..=5).contains(&i));
            }
        }
    }
}
