//! Minimal in-tree stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering exactly the API surface this workspace uses:
//! `Criterion` (builder methods, `bench_function`, `benchmark_group`),
//! `BenchmarkGroup` (`bench_function`, `bench_with_input`, `sample_size`,
//! `measurement_time`, `finish`), `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! It measures wall-clock medians over a configurable number of samples and
//! prints one line per benchmark — enough to compare hot paths locally. It
//! does no statistical analysis, warm-up calibration, or HTML reporting.
//! When the process runs under `cargo test` (criterion-style `--test`
//! harness arguments are present), every benchmark executes its routine once
//! so `cargo test --benches` still smoke-tests the code.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self, id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Criterion's CLI entry point; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Override the warm-up time for this group (accepted, unused).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = self.qualified(&id.into());
        let cfg = self.scoped();
        run_one(&cfg, &label, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let label = self.qualified(&id.into());
        let cfg = self.scoped();
        run_one(&cfg, &label, &mut |b| f(b, input));
        self
    }

    /// End the group (purely cosmetic here).
    pub fn finish(self) {}

    fn qualified(&self, id: &BenchmarkId) -> String {
        format!("{}/{}", self.name, id.label)
    }

    fn scoped(&self) -> Criterion {
        Criterion {
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            measurement_time: self.measurement_time.unwrap_or(self.parent.measurement_time),
            warm_up_time: self.parent.warm_up_time,
            test_mode: self.parent.test_mode,
        }
    }
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Identified by the parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    /// `(iterations, elapsed)` per sample, filled by `iter`.
    samples: Vec<(u64, Duration)>,
    iters_per_sample: u64,
    samples_wanted: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        for _ in 0..self.samples_wanted {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push((self.iters_per_sample, start.elapsed()));
        }
    }
}

fn run_one(cfg: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if cfg.test_mode {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            samples_wanted: 1,
            test_mode: true,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }

    // Calibrate iterations-per-sample so the whole run lands near the
    // measurement budget.
    let mut calib =
        Bencher { samples: Vec::new(), iters_per_sample: 1, samples_wanted: 1, test_mode: false };
    let warm_until = Instant::now() + cfg.warm_up_time;
    let mut once = Duration::ZERO;
    loop {
        calib.samples.clear();
        f(&mut calib);
        if let Some((iters, d)) = calib.samples.last() {
            once = *d / (*iters as u32).max(1);
        }
        if Instant::now() >= warm_until {
            break;
        }
    }
    let per_sample = cfg.measurement_time.as_nanos() / cfg.sample_size.max(1) as u128;
    let iters = if once.as_nanos() == 0 {
        1000
    } else {
        (per_sample / once.as_nanos()).clamp(1, 10_000_000) as u64
    };

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
        samples_wanted: cfg.sample_size,
        test_mode: false,
    };
    f(&mut b);

    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|(n, d)| d.as_nanos() as f64 / (*n).max(1) as f64).collect();
    if per_iter.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    let mut line = String::new();
    let _ = write!(line, "{label:<50} time: [{} {} {}]", fmt_ns(lo), fmt_ns(median), fmt_ns(hi));
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        let mut c = quick();
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).measurement_time(Duration::from_millis(2));
        let mut hits = 0u64;
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| {
                    hits += n;
                    black_box(hits)
                })
            });
        }
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(1)));
        group.finish();
        assert!(hits > 0);
    }
}
