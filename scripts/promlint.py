#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (0.0.4) payload.

Reads from a file argument or stdin and exits nonzero on the first class
of violation found. Checks, in the spirit of `promtool check metrics`:

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * every sample's family has a `# TYPE` line, and it appears first
  * TYPE kinds are counter|gauge|histogram|summary|untyped
  * no duplicate series (same name + label set twice)
  * sample values parse as floats (including +Inf/-Inf/NaN)
  * label values are well-formed (balanced quotes, valid escapes)
  * histograms: every series has a `+Inf` bucket, buckets are cumulative
    (non-decreasing with `le`), and the `+Inf` bucket equals `_count`

Usage:
  promlint.py [exposition.txt]
  curl -s localhost:9100/metrics | promlint.py
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(lineno, line, message):
    sys.stderr.write(f"promlint: line {lineno}: {message}\n  {line}\n")
    sys.exit(1)


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def family_of(name, types):
    """Resolves a sample name to its declared family (histogram samples
    carry a suffix)."""
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def main():
    if len(sys.argv) > 2:
        sys.stderr.write(__doc__)
        sys.exit(2)
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    types = {}
    samples = {}  # "name{labels}" -> (value, parsed labels dict, name)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            if len(parts) != 2:
                fail(lineno, line, "malformed TYPE line")
            name, kind = parts
            if not NAME_RE.match(name):
                fail(lineno, line, f"invalid metric name {name!r}")
            if kind not in TYPES:
                fail(lineno, line, f"unknown type {kind!r}")
            if name in types:
                fail(lineno, line, f"duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        try:
            key, raw_value = line.rsplit(" ", 1)
        except ValueError:
            fail(lineno, line, "sample line without a value")
        try:
            value = parse_value(raw_value)
        except ValueError:
            fail(lineno, line, f"unparseable value {raw_value!r}")
        name = key.split("{", 1)[0]
        if not NAME_RE.match(name):
            fail(lineno, line, f"invalid metric name {name!r}")
        labels = {}
        if "{" in key:
            if not key.endswith("}"):
                fail(lineno, line, "unterminated label set")
            blob = key[key.index("{") + 1 : -1]
            consumed = 0
            for m in LABEL_RE.finditer(blob):
                labels[m.group(1)] = m.group(2)
                consumed += len(m.group(0))
            # Account for the commas between pairs.
            consumed += max(0, len(labels) - 1)
            if consumed != len(blob):
                fail(lineno, line, f"malformed label set {{{blob}}}")
        if family_of(name, types) not in types:
            fail(lineno, line, f"sample {name} precedes (or lacks) its # TYPE line")
        if key in samples:
            fail(lineno, line, f"duplicate series {key}")
        samples[key] = (value, labels, name)

    # Histogram shape checks per label set.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        series = {}  # frozen non-le label set -> {"le": {...}, "count": v}
        for key, (value, labels, name) in samples.items():
            if not name.startswith(family):
                continue
            rest = dict(labels)
            le = rest.pop("le", None)
            ident = tuple(sorted(rest.items()))
            slot = series.setdefault(ident, {"le": {}, "count": None})
            if name == family + "_bucket":
                if le is None:
                    fail(0, key, f"{family} bucket without an le label")
                slot["le"][parse_value(le)] = value
            elif name == family + "_count":
                slot["count"] = value
        if not series:
            sys.stderr.write(f"promlint: histogram {family} has no series\n")
            sys.exit(1)
        for ident, slot in series.items():
            where = f"{family}{dict(ident)}"
            if math.inf not in slot["le"]:
                sys.stderr.write(f"promlint: {where} has no +Inf bucket\n")
                sys.exit(1)
            ordered = sorted(slot["le"].items())
            counts = [c for _, c in ordered]
            if any(a > b for a, b in zip(counts, counts[1:])):
                sys.stderr.write(f"promlint: {where} buckets are not cumulative\n")
                sys.exit(1)
            if slot["count"] is None:
                sys.stderr.write(f"promlint: {where} has no _count sample\n")
                sys.exit(1)
            if slot["le"][math.inf] != slot["count"]:
                sys.stderr.write(f"promlint: {where} +Inf bucket != _count\n")
                sys.exit(1)

    print(f"promlint: OK ({len(types)} families, {len(samples)} series)")


if __name__ == "__main__":
    main()
